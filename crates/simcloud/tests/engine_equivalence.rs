//! Sequential ↔ sharded engine equivalence.
//!
//! The sharded engine's contract is *trace equivalence*: for every
//! eligible scenario it must produce `CloudletRecord`s that are
//! bit-identical (f64 payloads compared by `to_bits`) to the sequential
//! kernel's, along with the same end time, event count and
//! `ResilienceCounters` — across seeds, both scheduler flavours,
//! homogeneous and heterogeneous fleets, fault plans, recovery policies,
//! resubmission, workflow DAGs (alone and composed with faults), both
//! record modes and any rayon thread count. Every shape runs sharded —
//! no scenario reports an `EngineFallback` anymore.

use rand::Rng;
use simcloud::datacenter::DatacenterBlueprint;
use simcloud::prelude::*;

/// Scenario shapes exercised by the equivalence sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Shape {
    /// One datacenter, identical VMs, batch submission at t=0.
    Homogeneous,
    /// Two datacenters with distinct latencies and prices, mixed VM
    /// sizes, staggered arrivals.
    Heterogeneous,
}

struct Scenario {
    seed: u64,
    scheduler: SchedulerKind,
    shape: Shape,
}

impl Scenario {
    /// Builds the scenario from scratch (blueprints hold a boxed policy
    /// and cannot be cloned) and runs it on `engine`.
    fn run_on(&self, engine: EngineKind) -> SimulationOutcome {
        let mut rng = simcloud::rng::stream(self.seed, "engine-equivalence");
        let (vm_count, cloudlet_count) = (12, 160);
        let vms: Vec<VmSpec> = (0..vm_count)
            .map(|_| match self.shape {
                Shape::Homogeneous => VmSpec::new(1_000.0, 10_000.0, 512.0, 1_000.0, 2),
                Shape::Heterogeneous => VmSpec::new(
                    rng.gen_range(500.0..2_500.0),
                    10_000.0,
                    512.0,
                    rng.gen_range(100.0..1_000.0),
                    rng.gen_range(1..=4),
                ),
            })
            .collect();
        let cloudlets: Vec<CloudletSpec> = (0..cloudlet_count)
            .map(|_| {
                let len = rng.gen_range(1_000.0..40_000.0);
                match self.shape {
                    Shape::Homogeneous => CloudletSpec::new(len, 0.0, 0.0, 1),
                    Shape::Heterogeneous => CloudletSpec::new(
                        len,
                        rng.gen_range(0.0..300.0),
                        rng.gen_range(0.0..300.0),
                        rng.gen_range(1..=3),
                    ),
                }
            })
            .collect();
        let assignment: Vec<VmId> = (0..cloudlet_count)
            .map(|_| VmId::from_index(rng.gen_range(0..vm_count)))
            .collect();
        let envelope = VmSpec {
            mips: vms.iter().map(|v| v.mips).fold(0.0, f64::max),
            size_mb: 10_000.0,
            ram_mb: 512.0,
            bw_mbps: 1_000.0,
            pes: vms.iter().map(|v| v.pes).max().unwrap(),
        };
        let blueprint = |cost: CostModel| {
            let mut b = DatacenterBlueprint::sized_for(
                &envelope,
                vm_count,
                2,
                DatacenterCharacteristics {
                    cost,
                    ..DatacenterCharacteristics::default()
                },
            );
            b.scheduler = self.scheduler;
            b
        };
        let mut builder = SimulationBuilder::new()
            .engine(engine)
            .vms(vms)
            .cloudlets(cloudlets)
            .assignment(assignment);
        builder = match self.shape {
            Shape::Homogeneous => builder.datacenter(blueprint(CostModel::free())),
            Shape::Heterogeneous => {
                let arrivals: Vec<SimTime> = (0..cloudlet_count)
                    .map(|_| SimTime::new(rng.gen_range(0.0..200.0)))
                    .collect();
                let placement: Vec<DatacenterId> = (0..vm_count)
                    .map(|i| DatacenterId::from_index(i % 2))
                    .collect();
                builder
                    .datacenter(blueprint(CostModel::table_vii_midpoint()))
                    .datacenter(blueprint(CostModel::new(0.05, 0.001, 0.02, 5.0)))
                    .vm_placement(placement)
                    .topology(Topology::with_latencies(vec![1.5, 40.0]))
                    .arrivals(arrivals)
            }
        };
        builder.run().expect("scenario is feasible by construction")
    }
}

fn bits(t: Option<SimTime>) -> Option<u64> {
    t.map(|t| t.as_millis().to_bits())
}

/// Asserts two outcomes are byte-identical (modulo the `engine` tag).
fn assert_identical(a: &SimulationOutcome, b: &SimulationOutcome, label: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{label}: record count");
    for (ra, rb) in a.records.iter().zip(&b.records) {
        let id = ra.id;
        assert_eq!(ra.id, rb.id, "{label}: id order");
        assert_eq!(ra.vm, rb.vm, "{label}: vm of {id:?}");
        assert_eq!(ra.status, rb.status, "{label}: status of {id:?}");
        assert_eq!(
            bits(ra.submit),
            bits(rb.submit),
            "{label}: submit of {id:?}"
        );
        assert_eq!(bits(ra.start), bits(rb.start), "{label}: start of {id:?}");
        assert_eq!(
            bits(ra.finish),
            bits(rb.finish),
            "{label}: finish of {id:?}"
        );
        assert_eq!(
            ra.execution_ms.map(f64::to_bits),
            rb.execution_ms.map(f64::to_bits),
            "{label}: execution of {id:?}"
        );
        assert_eq!(
            ra.cost.to_bits(),
            rb.cost.to_bits(),
            "{label}: cost of {id:?} ({} vs {})",
            ra.cost,
            rb.cost
        );
        assert_eq!(ra.met_deadline, rb.met_deadline, "{label}: sla of {id:?}");
    }
    assert_eq!(
        a.end_time.as_millis().to_bits(),
        b.end_time.as_millis().to_bits(),
        "{label}: end_time ({} vs {})",
        a.end_time.as_millis(),
        b.end_time.as_millis()
    );
    assert_eq!(
        a.events_processed, b.events_processed,
        "{label}: events_processed"
    );
    assert_eq!(a.vms_created, b.vms_created, "{label}: vms_created");
    assert_eq!(a.vms_rejected, b.vms_rejected, "{label}: vms_rejected");
    assert_eq!(
        a.cloudlets_failed, b.cloudlets_failed,
        "{label}: cloudlets_failed"
    );
    assert_resilience_identical(a, b, label);
}

/// Asserts the recovery counters match bit for bit.
fn assert_resilience_identical(a: &SimulationOutcome, b: &SimulationOutcome, label: &str) {
    let (ra, rb) = (&a.resilience, &b.resilience);
    assert_eq!(ra.retries, rb.retries, "{label}: retries");
    assert_eq!(ra.recovered, rb.recovered, "{label}: recovered");
    assert_eq!(ra.abandoned, rb.abandoned, "{label}: abandoned");
    assert_eq!(
        ra.wasted_work_ms.to_bits(),
        rb.wasted_work_ms.to_bits(),
        "{label}: wasted_work_ms ({} vs {})",
        ra.wasted_work_ms,
        rb.wasted_work_ms
    );
    assert_eq!(
        ra.recovery_time_ms.to_bits(),
        rb.recovery_time_ms.to_bits(),
        "{label}: recovery_time_ms ({} vs {})",
        ra.recovery_time_ms,
        rb.recovery_time_ms
    );
}

/// Asserts two aggregate-mode outcomes agree on every accessor the
/// aggregate can answer (the fold itself is private).
fn assert_aggregate_identical(a: &SimulationOutcome, b: &SimulationOutcome, label: &str) {
    let f = |v: Option<f64>| v.map(f64::to_bits);
    assert_eq!(a.finished_count(), b.finished_count(), "{label}: finished");
    assert_eq!(a.failed_count(), b.failed_count(), "{label}: failed");
    assert_eq!(a.observed_count(), b.observed_count(), "{label}: observed");
    assert_eq!(
        f(a.simulation_time_ms()),
        f(b.simulation_time_ms()),
        "{label}: simulation_time_ms"
    );
    assert_eq!(
        f(a.mean_execution_ms()),
        f(b.mean_execution_ms()),
        "{label}: mean_execution_ms"
    );
    assert_eq!(
        f(a.time_imbalance()),
        f(b.time_imbalance()),
        "{label}: time_imbalance"
    );
    assert_eq!(
        f(a.turnaround_imbalance()),
        f(b.turnaround_imbalance()),
        "{label}: turnaround_imbalance"
    );
    assert_eq!(
        a.total_cost().to_bits(),
        b.total_cost().to_bits(),
        "{label}: total_cost"
    );
    assert_eq!(a.sla_violations(), b.sla_violations(), "{label}: sla");
    assert_eq!(f(a.goodput()), f(b.goodput()), "{label}: goodput");
    let (ua, ub) = (a.per_vm_usage(10), b.per_vm_usage(10));
    assert_eq!(ua.counts, ub.counts, "{label}: per-VM counts");
    let busy_a: Vec<u64> = ua.busy_ms.iter().map(|v| v.to_bits()).collect();
    let busy_b: Vec<u64> = ub.busy_ms.iter().map(|v| v.to_bits()).collect();
    assert_eq!(busy_a, busy_b, "{label}: per-VM busy_ms");
    assert_eq!(
        a.end_time.as_millis().to_bits(),
        b.end_time.as_millis().to_bits(),
        "{label}: end_time"
    );
    assert_eq!(
        a.events_processed, b.events_processed,
        "{label}: events_processed"
    );
    assert_resilience_identical(a, b, label);
}

#[test]
fn sharded_matches_sequential_across_seeds_schedulers_and_shapes() {
    for seed in [1u64, 7, 42] {
        for scheduler in [SchedulerKind::SpaceShared, SchedulerKind::TimeShared] {
            for shape in [Shape::Homogeneous, Shape::Heterogeneous] {
                let sc = Scenario {
                    seed,
                    scheduler,
                    shape,
                };
                let seq = sc.run_on(EngineKind::Sequential);
                let shd = sc.run_on(EngineKind::Sharded);
                assert_eq!(seq.engine, EngineKind::Sequential);
                assert_eq!(
                    shd.engine,
                    EngineKind::Sharded,
                    "eligible scenario must not fall back"
                );
                assert!(seq.finished_count() > 0, "scenario must do work");
                let label = format!("seed {seed} / {scheduler:?} / {shape:?}");
                assert_identical(&seq, &shd, &label);
            }
        }
    }
}

/// Shard boundaries move with the worker count; results must not.
#[test]
fn sharded_results_are_thread_count_independent() {
    let sc = Scenario {
        seed: 99,
        scheduler: SchedulerKind::SpaceShared,
        shape: Shape::Heterogeneous,
    };
    let reference = sc.run_on(EngineKind::Sequential);
    for threads in [1usize, 2, 4, 8] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("vendored rayon accepts repeated global builds");
        let shd = sc.run_on(EngineKind::Sharded);
        assert_eq!(shd.engine, EngineKind::Sharded);
        assert_identical(&reference, &shd, &format!("{threads} threads"));
    }
}

#[test]
fn workflow_dag_and_resilience_shapes_all_run_sharded() {
    let vm = VmSpec::new(1_000.0, 10_000.0, 512.0, 1_000.0, 2);
    let mk = || {
        let mut b = DatacenterBlueprint::sized_for(&vm, 2, 1, DatacenterCharacteristics::default());
        b.scheduler = SchedulerKind::SpaceShared;
        b
    };
    let base = |b: DatacenterBlueprint| {
        SimulationBuilder::new()
            .engine(EngineKind::Sharded)
            .datacenter(b)
            .vms(vec![vm.clone(), vm.clone()])
            .cloudlets(vec![
                CloudletSpec::new(5_000.0, 0.0, 0.0, 1),
                CloudletSpec::new(5_000.0, 0.0, 0.0, 1),
            ])
            .assignment(vec![VmId(0), VmId(1)])
    };

    // Workflow dependencies run on the dependency-aware epoch driver,
    // bit-identical to the kernel — no fallback.
    let seq_deps = base(mk())
        .engine(EngineKind::Sequential)
        .dependencies(vec![vec![], vec![CloudletId(0)]])
        .run()
        .unwrap();
    let with_deps = base(mk())
        .dependencies(vec![vec![], vec![CloudletId(0)]])
        .run()
        .unwrap();
    assert_eq!(with_deps.engine, EngineKind::Sharded);
    assert_eq!(with_deps.fallback, None, "DAGs no longer fall back");
    assert_eq!(with_deps.finished_count(), 2);
    assert_identical(&seq_deps, &with_deps, "two-cloudlet chain");

    // Resubmission stays on the sharded engine (epoch driver).
    let with_retries = base(mk()).resubmit_failures(2).run().unwrap();
    assert_eq!(with_retries.engine, EngineKind::Sharded);
    assert_eq!(with_retries.fallback, None);
    assert_eq!(with_retries.finished_count(), 2);

    // So does failure injection.
    let with_failures = base(mk().with_failure(HostId(0), SimTime::new(1.0e9)))
        .run()
        .unwrap();
    assert_eq!(with_failures.engine, EngineKind::Sharded);
    assert_eq!(with_failures.fallback, None);
}

/// The workflow shapes the paper-scale generators emit, shrunk to test
/// size. Assignments deliberately mix same-VM edges (resolved locally
/// inside a replay lane) and cross-VM edges (promoted to release-barrier
/// events), so both halves of the dependency-aware epoch driver are
/// exercised.
#[derive(Debug, Clone, Copy)]
enum DagShape {
    /// One linear chain, co-located in runs of ten tasks: mostly local
    /// releases with a cross hop at every run boundary.
    Chain,
    /// Root → 30 branches → join: the join waits on 30 parents spread
    /// over the fleet (all cross), branches are a local/cross mix.
    ForkJoin,
    /// 6 layers × 8 tasks, 1–3 random parents in the previous layer,
    /// random assignment, staggered arrivals (release-wait arithmetic).
    LayeredRandom,
    /// 12 independent 6-stage chains, each pinned to one VM: every
    /// release is local, whole chains replay without a single barrier.
    PipelineEnsemble,
}

/// Builds and runs one DAG scenario on `engine`.
fn dag_outcome(
    shape: DagShape,
    seed: u64,
    engine: EngineKind,
    mode: RecordMode,
) -> SimulationOutcome {
    let mut rng = simcloud::rng::stream(seed, "dag-equivalence");
    let vm_count = 8usize;
    let vm = VmSpec::new(1_000.0, 10_000.0, 512.0, 1_000.0, 2);
    let task = |rng: &mut rand::rngs::StdRng| {
        CloudletSpec::new(
            rng.gen_range(1_000.0..30_000.0),
            rng.gen_range(0.0..150.0),
            rng.gen_range(0.0..150.0),
            1,
        )
    };
    let (parents, assignment, cloudlets): (Vec<Vec<CloudletId>>, Vec<VmId>, Vec<CloudletSpec>) =
        match shape {
            DagShape::Chain => {
                let n = 40usize;
                let parents = (0..n)
                    .map(|i| {
                        if i == 0 {
                            vec![]
                        } else {
                            vec![CloudletId::from_index(i - 1)]
                        }
                    })
                    .collect();
                let assignment = (0..n)
                    .map(|i| VmId::from_index((i / 10) % vm_count))
                    .collect();
                let cloudlets = (0..n).map(|_| task(&mut rng)).collect();
                (parents, assignment, cloudlets)
            }
            DagShape::ForkJoin => {
                let branches = 30usize;
                let n = branches + 2;
                let mut parents = vec![vec![]];
                for _ in 0..branches {
                    parents.push(vec![CloudletId(0)]);
                }
                parents.push((1..=branches).map(CloudletId::from_index).collect());
                let assignment = (0..n)
                    .map(|_| VmId::from_index(rng.gen_range(0..vm_count)))
                    .collect();
                let cloudlets = (0..n).map(|_| task(&mut rng)).collect();
                (parents, assignment, cloudlets)
            }
            DagShape::LayeredRandom => {
                let (layers, width) = (6usize, 8usize);
                let n = layers * width;
                let mut parents: Vec<Vec<CloudletId>> = vec![vec![]; n];
                for l in 1..layers {
                    for w in 0..width {
                        let k = rng.gen_range(1..=3usize);
                        let mut ps: Vec<CloudletId> = (0..k)
                            .map(|_| {
                                CloudletId::from_index((l - 1) * width + rng.gen_range(0..width))
                            })
                            .collect();
                        ps.sort_unstable();
                        ps.dedup();
                        parents[l * width + w] = ps;
                    }
                }
                let assignment = (0..n)
                    .map(|_| VmId::from_index(rng.gen_range(0..vm_count)))
                    .collect();
                let cloudlets = (0..n).map(|_| task(&mut rng)).collect();
                (parents, assignment, cloudlets)
            }
            DagShape::PipelineEnsemble => {
                let (jobs, stages) = (12usize, 6usize);
                let n = jobs * stages;
                let mut parents: Vec<Vec<CloudletId>> = vec![vec![]; n];
                for j in 0..jobs {
                    for s in 1..stages {
                        parents[j * stages + s] = vec![CloudletId::from_index(j * stages + s - 1)];
                    }
                }
                let assignment = (0..n)
                    .map(|i| VmId::from_index((i / stages) % vm_count))
                    .collect();
                let cloudlets = (0..n).map(|_| task(&mut rng)).collect();
                (parents, assignment, cloudlets)
            }
        };
    let n = cloudlets.len();
    let mut builder = SimulationBuilder::new()
        .engine(engine)
        .record_mode(mode)
        .datacenter(DatacenterBlueprint::sized_for(
            &vm,
            vm_count,
            2,
            DatacenterCharacteristics::default(),
        ))
        .vms(vec![vm; vm_count])
        .cloudlets(cloudlets)
        .assignment(assignment)
        .dependencies(parents);
    if matches!(shape, DagShape::LayeredRandom) {
        let arrivals: Vec<SimTime> = (0..n)
            .map(|_| SimTime::new(rng.gen_range(0.0..5_000.0)))
            .collect();
        builder = builder.arrivals(arrivals);
    }
    builder.run().expect("DAG scenario is feasible")
}

/// DAG shapes × threads × seeds × record modes: every sharded run is
/// bit-identical to the sequential kernel and completes the whole DAG.
#[test]
fn dag_shape_matrix_matches_sequential_across_threads_seeds_and_modes() {
    let shapes = [
        DagShape::Chain,
        DagShape::ForkJoin,
        DagShape::LayeredRandom,
        DagShape::PipelineEnsemble,
    ];
    for threads in [1usize, 2, 4, 8] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("vendored rayon accepts repeated global builds");
        for seed in [3u64, 13, 77] {
            for shape in shapes {
                for mode in [RecordMode::Full, RecordMode::Aggregate] {
                    let label = format!("{threads} threads / seed {seed} / {shape:?} / {mode:?}");
                    let seq = dag_outcome(shape, seed, EngineKind::Sequential, mode);
                    let shd = dag_outcome(shape, seed, EngineKind::Sharded, mode);
                    assert_eq!(seq.engine, EngineKind::Sequential, "{label}");
                    assert_eq!(shd.engine, EngineKind::Sharded, "{label}: no fallback");
                    assert_eq!(shd.fallback, None, "{label}");
                    assert_eq!(
                        seq.finished_count(),
                        seq.observed_count(),
                        "{label}: DAG must complete"
                    );
                    match mode {
                        RecordMode::Full => assert_identical(&seq, &shd, &label),
                        RecordMode::Aggregate => assert_aggregate_identical(&seq, &shd, &label),
                    }
                }
            }
        }
    }
}

/// Which resilience machinery a matrix scenario arms on top of the fault
/// plan.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Resilience {
    /// Host outages, a repair and VM slowdowns; failures are final.
    Faults,
    /// Broker-level retry with backoff and cyclic rebinding.
    Recovery,
    /// Legacy resubmission (`resubmit_failures`).
    Resubmission,
    /// Faults plus a workflow DAG — dependency-aware epochs under fault
    /// shaping (every release is cross, barrier-bounded).
    Workflow,
    /// Faults, a workflow DAG *and* broker-level recovery.
    WorkflowRecovery,
    /// Faults, a workflow DAG *and* legacy resubmission.
    WorkflowResubmission,
}

/// Builds and runs one fault-injected matrix scenario: 10 VMs on 5 hosts,
/// 120 mixed cloudlets, two host outages (one repaired), two slowdowns
/// (one bounded).
fn resilient_outcome(
    seed: u64,
    res: Resilience,
    engine: EngineKind,
    mode: RecordMode,
) -> SimulationOutcome {
    use simcloud::faults::{FaultPlan, HostOutage, VmSlowdown};
    let mut rng = simcloud::rng::stream(seed, "resilience-equivalence");
    let (vm_count, cloudlet_count) = (10usize, 120usize);
    let vm = VmSpec::new(1_000.0, 10_000.0, 512.0, 1_000.0, 2);
    let cloudlets: Vec<CloudletSpec> = (0..cloudlet_count)
        .map(|_| {
            CloudletSpec::new(
                rng.gen_range(1_000.0..40_000.0),
                rng.gen_range(0.0..200.0),
                rng.gen_range(0.0..200.0),
                rng.gen_range(1..=2),
            )
        })
        .collect();
    let assignment: Vec<VmId> = (0..cloudlet_count)
        .map(|_| VmId::from_index(rng.gen_range(0..vm_count)))
        .collect();
    let mut plan = FaultPlan::healthy();
    // Host 0 (VMs 0–1) dies mid-run and comes back; host 2 (VMs 4–5)
    // dies for good; VM 9 limps for a while, VM 7 for the rest of the
    // run. Cloudlets run 1–40 s, so every event lands on live work.
    plan.host_outages.push(HostOutage {
        datacenter: DatacenterId(0),
        host: HostId(0),
        fail_at: SimTime::new(8_000.0),
        repair_at: Some(SimTime::new(20_000.0)),
    });
    plan.host_outages.push(HostOutage {
        datacenter: DatacenterId(0),
        host: HostId(2),
        fail_at: SimTime::new(15_000.0),
        repair_at: None,
    });
    plan.vm_slowdowns.push(VmSlowdown {
        vm: VmId(9),
        from: SimTime::new(5_000.0),
        factor: 0.5,
        until: Some(SimTime::new(30_000.0)),
    });
    plan.vm_slowdowns.push(VmSlowdown {
        vm: VmId(7),
        from: SimTime::new(12_000.0),
        factor: 0.25,
        until: None,
    });
    let mut builder = SimulationBuilder::new()
        .engine(engine)
        .record_mode(mode)
        .datacenter(DatacenterBlueprint::sized_for(
            &vm,
            vm_count,
            2,
            DatacenterCharacteristics::default(),
        ))
        .vms(vec![vm; vm_count])
        .cloudlets(cloudlets)
        .assignment(assignment)
        .faults(plan);
    // Sparse chains: every 7th cloudlet waits for one 3 back.
    let sparse_deps = || -> Vec<Vec<CloudletId>> {
        (0..cloudlet_count)
            .map(|i| {
                if i % 7 == 3 && i >= 3 {
                    vec![CloudletId::from_index(i - 3)]
                } else {
                    vec![]
                }
            })
            .collect()
    };
    builder = match res {
        Resilience::Faults => builder,
        Resilience::Recovery => builder.recovery(simcloud::broker::RecoveryPolicy::default()),
        Resilience::Resubmission => builder.resubmit_failures(2),
        Resilience::Workflow => builder.dependencies(sparse_deps()),
        Resilience::WorkflowRecovery => builder
            .dependencies(sparse_deps())
            .recovery(simcloud::broker::RecoveryPolicy::default()),
        Resilience::WorkflowResubmission => {
            builder.dependencies(sparse_deps()).resubmit_failures(2)
        }
    };
    builder.run().expect("matrix scenario is feasible")
}

/// The tentpole obligation: faults × recovery × resubmission × workflows,
/// across thread counts, seeds and both record modes, every sharded run
/// bit-identical to the sequential kernel (including the resilience
/// counters), with no shape reporting a fallback.
#[test]
fn resilience_matrix_matches_sequential_across_threads_seeds_and_modes() {
    let variants = [
        Resilience::Faults,
        Resilience::Recovery,
        Resilience::Resubmission,
        Resilience::Workflow,
        Resilience::WorkflowRecovery,
        Resilience::WorkflowResubmission,
    ];
    for threads in [1usize, 2, 4, 8] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("vendored rayon accepts repeated global builds");
        for seed in [5u64, 17, 83] {
            let mut faults_finished = None;
            for res in variants {
                for mode in [RecordMode::Full, RecordMode::Aggregate] {
                    let label = format!("{threads} threads / seed {seed} / {res:?} / {mode:?}");
                    let seq = resilient_outcome(seed, res, EngineKind::Sequential, mode);
                    let shd = resilient_outcome(seed, res, EngineKind::Sharded, mode);
                    assert_eq!(seq.engine, EngineKind::Sequential);
                    assert_eq!(seq.fallback, None, "{label}: sequential never falls back");
                    assert_eq!(shd.engine, EngineKind::Sharded, "{label}: no fallback");
                    assert_eq!(shd.fallback, None, "{label}");
                    // The plan must actually bite, in the way each
                    // variant is supposed to react to it.
                    match res {
                        Resilience::Faults => {
                            assert!(seq.finished_count() < 120, "{label}: no work lost");
                            faults_finished = Some(seq.finished_count());
                        }
                        Resilience::Recovery => {
                            assert!(seq.resilience.retries > 0, "{label}: nothing retried");
                        }
                        Resilience::Resubmission => {
                            // Rebinding rescues work the bare plan loses
                            // (legacy resubmission counts on the broker,
                            // not in the resilience counters).
                            assert!(
                                seq.finished_count() > faults_finished.expect("Faults ran first"),
                                "{label}: resubmission rescued nothing"
                            );
                        }
                        Resilience::Workflow => {
                            assert!(seq.finished_count() < 120, "{label}: no work lost");
                        }
                        Resilience::WorkflowRecovery => {
                            assert!(seq.resilience.retries > 0, "{label}: nothing retried");
                        }
                        Resilience::WorkflowResubmission => {
                            assert!(seq.finished_count() > 0, "{label}: everything lost");
                        }
                    }
                    match mode {
                        RecordMode::Full => assert_identical(&seq, &shd, &label),
                        RecordMode::Aggregate => assert_aggregate_identical(&seq, &shd, &label),
                    }
                }
            }
        }
    }
}
