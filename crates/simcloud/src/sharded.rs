//! The sharded simulation engine.
//!
//! For the paper's dominant scenario shape — a pre-computed cloudlet→VM
//! assignment with no workflow dependencies, no host failures and no
//! resubmission — every VM's execution timeline is independent of every
//! other VM's once placement has happened: cloudlets never move between
//! VMs, and the broker only counts returns. This module exploits that by
//! replaying the event kernel's per-VM message sequence directly, with the
//! VM fleet partitioned into contiguous shards that run on rayon workers.
//!
//! The replay is *trace-equivalent* to the sequential kernel: it drives
//! the same [`crate::cloudlet_sched`] state machines with the same
//! submission batches at the same timestamps, and reproduces the event
//! queue's per-VM tick coalescing rules (see [`crate::event::EventQueue`])
//! with a one-slot `armed` deadline. The resulting `CloudletRecord`s are
//! bit-identical to a sequential run, independent of the shard count —
//! the engine-equivalence test suite enforces this across seeds, scheduler
//! flavours and thread counts.
//!
//! Scenarios outside the eligible shape split two ways in
//! [`crate::simulation::SimulationBuilder::run`]: workflow dependencies
//! and legacy resubmission transparently fall back to the sequential
//! kernel (the outcome still reports which engine ran), while fault
//! injection — host failures, a non-empty [`crate::faults::FaultPlan`]
//! or a recovery policy — is refused outright with
//! [`crate::error::SimError::Unsupported`], because a fault timeline
//! rewrites VM capacity mid-flight and a silent engine switch would hide
//! that the requested parallel replay never happened.

use std::collections::HashMap;

use rayon::prelude::*;

use crate::characteristics::CostModel;
use crate::cloudlet::{Cloudlet, CloudletStatus};
use crate::cloudlet_sched::{RunningCloudlet, SchedulerKind};
use crate::cost::cloudlet_cost;
use crate::datacenter::DatacenterBlueprint;
use crate::host::Host;
use crate::ids::{CloudletId, DatacenterId, HostId, VmId};
use crate::kernel::{RunStats, World};
use crate::network::{transfer_time, Topology};
use crate::time::SimTime;
use crate::vm::Vm;

/// Per-datacenter data the per-VM replay needs after placement.
struct DcInfo {
    scheduler: SchedulerKind,
    cost: CostModel,
}

/// Finished-cloudlet result produced by a shard.
struct Update {
    id: CloudletId,
    start: SimTime,
    finish: SimTime,
    cost: f64,
}

/// Everything a shard reports back for the deterministic merge.
struct ShardOut {
    updates: Vec<Update>,
    /// Latest event the shard's VMs would have put on the kernel clock
    /// (tick fires and completion returns, including output transfer).
    last_event: SimTime,
    /// `VmTick` events the sequential kernel would have delivered.
    ticks: u64,
}

/// Runs an eligible scenario on the sharded engine.
///
/// The caller ([`crate::simulation::SimulationBuilder::run`]) has already
/// validated the scenario and checked eligibility: no dependencies, no
/// fault injection (host failures, fault plans, recovery), no
/// resubmission.
pub(crate) fn run(
    world: &mut World,
    blueprints: Vec<DatacenterBlueprint>,
    vm_placement: &[DatacenterId],
    assignment: &[VmId],
    arrivals: Option<&[SimTime]>,
    topology: &Topology,
) -> RunStats {
    let dc_count = blueprints.len();

    // ---- Phase 1: VM placement, exactly as the kernel would order it.
    //
    // The kernel delivers `VmCreate`s ordered by (arrival time, push
    // sequence). All of a datacenter's creates share one latency and were
    // pushed in VM-index order, so each datacenter sees its VMs in index
    // order — which a single index-order loop over disjoint per-DC state
    // reproduces.
    let mut dc_infos = Vec::with_capacity(dc_count);
    let mut dc_states = Vec::with_capacity(dc_count);
    for blueprint in blueprints {
        assert!(!blueprint.hosts.is_empty(), "datacenter needs hosts");
        let hosts: Vec<Host> = blueprint
            .hosts
            .into_iter()
            .enumerate()
            .map(|(i, spec)| Host::new(HostId::from_index(i), spec))
            .collect();
        dc_states.push((hosts, blueprint.allocation));
        dc_infos.push(DcInfo {
            scheduler: blueprint.scheduler,
            cost: blueprint.characteristics.cost,
        });
    }
    // The broker submits cloudlets when the last ack lands: each ack
    // arrives at its datacenter's latency, so readiness is the max.
    let mut t_ready = SimTime::ZERO;
    for (idx, dc) in vm_placement.iter().enumerate() {
        let vm_id = VmId::from_index(idx);
        world.vm_mut(vm_id).status = crate::vm::VmStatus::Requested;
        t_ready = t_ready.max(topology.latency_to(*dc));
        let spec = world.vm(vm_id).spec.clone();
        let (hosts, allocation) = &mut dc_states[dc.index()];
        let placed = allocation.select_host(hosts, &spec).and_then(|host_id| {
            let host = &mut hosts[host_id.index()];
            host.allocate_vm(vm_id, &spec).then_some(host_id)
        });
        match placed {
            Some(host_id) => world.vm_mut(vm_id).place(*dc, host_id),
            None => world.vm_mut(vm_id).reject(),
        }
    }
    drop(dc_states);

    // ---- Phase 2: submission grouping, mirroring the broker's batch
    // path bit for bit (same delay arithmetic, same group keys, same
    // first-occurrence order).
    let mut groups: Vec<(VmId, SimTime, Vec<CloudletId>)> = Vec::new();
    let mut group_of: HashMap<(u32, u64), usize> = HashMap::new();
    for idx in 0..assignment.len() {
        let cloudlet = CloudletId::from_index(idx);
        let vm_id = assignment[idx];
        let vm = world.vm(vm_id);
        if !vm.is_active() {
            world.cloudlet_mut(cloudlet).status = CloudletStatus::Failed;
            continue;
        }
        let dc = vm.datacenter.expect("active VM has a datacenter");
        let latency = topology.latency_to(dc);
        let spec = &world.cloudlets[idx].spec;
        let in_delay = transfer_time(spec.file_size_mb, vm.spec.bw_mbps);
        let wait = arrivals
            .map(|a| a[idx].saturating_sub(t_ready))
            .unwrap_or(SimTime::ZERO);
        let delay = wait + latency + in_delay;
        {
            let cl = world.cloudlet_mut(cloudlet);
            cl.submit_time = Some(t_ready + wait);
            cl.vm = Some(vm_id);
        }
        let slot = *group_of
            .entry((vm_id.0, delay.as_millis().to_bits()))
            .or_insert_with(|| {
                groups.push((vm_id, t_ready + delay, Vec::new()));
                groups.len() - 1
            });
        groups[slot].2.push(cloudlet);
    }
    let group_count = groups.len() as u64;

    // ---- Phase 3: per-VM replay across shards.
    let vm_count = world.vms.len();
    let mut per_vm: Vec<Vec<(SimTime, Vec<CloudletId>)>> = vec![Vec::new(); vm_count];
    for (vm_id, delivery, cls) in groups {
        per_vm[vm_id.index()].push((delivery, cls));
    }
    for subs in &mut per_vm {
        // Stable by delivery time: equal-time groups (distinct delays that
        // round to one instant) keep the broker's first-occurrence order.
        subs.sort_by_key(|g| g.0);
    }

    let threads = rayon::current_num_threads().max(1);
    let chunk = vm_count.div_ceil(threads).max(1);
    let ranges: Vec<(usize, usize)> = (0..vm_count)
        .step_by(chunk)
        .map(|lo| (lo, (lo + chunk).min(vm_count)))
        .collect();
    let vms = &world.vms;
    let cloudlets = &world.cloudlets;
    let per_vm_ref = &per_vm;
    let dc_infos_ref = &dc_infos;
    let shard_results: Vec<ShardOut> = ranges
        .into_par_iter()
        .map(|(lo, hi)| {
            let mut out = ShardOut {
                updates: Vec::new(),
                last_event: SimTime::ZERO,
                ticks: 0,
            };
            for vi in lo..hi {
                replay_vm(&vms[vi], &per_vm_ref[vi], cloudlets, dc_infos_ref, &mut out);
            }
            out
        })
        .collect();

    // ---- Deterministic merge. Shard results cover disjoint cloudlets
    // (each belongs to exactly one VM), so merge order cannot matter; we
    // still apply them in shard order.
    let start_events = dc_count as u64 + 1; // every entity gets a Start
    let mut events = start_events + 2 * vm_count as u64 + group_count;
    let mut end_time = t_ready;
    for shard in shard_results {
        end_time = end_time.max(shard.last_event);
        events += shard.ticks + shard.updates.len() as u64;
        for u in shard.updates {
            let cl = world.cloudlet_mut(u.id);
            cl.status = CloudletStatus::Finished;
            cl.start_time = Some(u.start);
            cl.finish_time = Some(u.finish);
            cl.cost = u.cost;
        }
    }
    RunStats {
        end_time,
        events_processed: events,
        drained: true,
    }
}

/// Replays one VM's event sequence: submission batches interleaved with
/// the coalesced tick timer, exactly as the sequential kernel delivers
/// them.
fn replay_vm(
    vm: &Vm,
    subs: &[(SimTime, Vec<CloudletId>)],
    cloudlets: &[Cloudlet],
    dc_infos: &[DcInfo],
    out: &mut ShardOut,
) {
    if subs.is_empty() {
        return;
    }
    let dc = vm.datacenter.expect("VM with submissions is placed");
    let info = &dc_infos[dc.index()];
    let mut sched = info.scheduler.build(vm.spec.mips, vm.spec.pes);
    // The one-slot armed deadline reproduces the event queue's per-VM
    // coalescing: at most one live tick, superseded only by an earlier
    // one (see `EventQueue::push_vm_tick`).
    let mut armed: Option<SimTime> = None;
    let mut gi = 0usize;
    let mut starts: HashMap<CloudletId, SimTime> = HashMap::new();
    loop {
        // Next event is the earlier of the next submission batch and the
        // armed tick. On a tie the submission wins: submission events were
        // pushed when the fleet came up, before any tick could be armed,
        // so they carry lower sequence numbers.
        let next_sub = subs.get(gi).map(|g| g.0);
        let (now, is_sub) = match (next_sub, armed) {
            (Some(s), Some(a)) => {
                if s <= a {
                    (s, true)
                } else {
                    (a, false)
                }
            }
            (Some(s), None) => (s, true),
            (None, Some(a)) => (a, false),
            (None, None) => break,
        };
        out.last_event = out.last_event.max(now);
        let tick = if is_sub {
            let batch: Vec<RunningCloudlet> = subs[gi]
                .1
                .iter()
                .map(|&c| {
                    let cl = &cloudlets[c.index()];
                    RunningCloudlet::new(c, cl.spec.length_mi, cl.spec.pes)
                })
                .collect();
            gi += 1;
            sched.submit_many(now, batch)
        } else {
            armed = None;
            out.ticks += 1;
            sched.advance(now)
        };
        for c in &tick.started {
            starts.insert(*c, now);
        }
        for &c in &tick.finished {
            let start = starts[&c];
            // Mirrors `Datacenter::apply_tick`: cost from the execution
            // span, completion notified after the output transfer.
            let cpu_seconds = now.saturating_sub(start).as_secs();
            let spec = &cloudlets[c.index()].spec;
            let cost = cloudlet_cost(&info.cost, &vm.spec, spec, cpu_seconds);
            let out_delay = transfer_time(spec.output_size_mb, vm.spec.bw_mbps);
            out.last_event = out.last_event.max(now + out_delay);
            out.updates.push(Update {
                id: c,
                start,
                finish: now,
                cost,
            });
        }
        if let Some(p) = tick.next_completion {
            let t = p.max(now);
            if armed.is_none_or(|a| t < a || a < now) {
                armed = Some(t);
            }
        }
    }
}
