//! The sharded simulation engine.
//!
//! Two parallel replay paths live here, both bit-identical to the
//! sequential kernel at any thread count (the engine-equivalence suite
//! enforces this across seeds, scheduler flavours, fault plans, recovery
//! policies and resubmission):
//!
//! 1. **Free-running replay** ([`run`]) for the paper's dominant shape —
//!    a pre-computed cloudlet→VM assignment with no fault injection, no
//!    recovery and no resubmission. Every VM's timeline is independent of
//!    every other VM's once placement has happened, so the fleet is
//!    partitioned into contiguous shards that replay to completion on
//!    rayon workers with no synchronisation at all.
//!
//! 2. **Epoch-sharded replay** ([`run_epochs`]) for fault-injected,
//!    recovering and resubmitting scenarios. The run alternates between
//!    *control instants* — host failures and repairs, VM degrades, retry
//!    wake-ups, submissions landing on dead VMs — handled sequentially by
//!    the *real* [`crate::broker::Broker`] and [`crate::datacenter`]
//!    entities, and *bulk epochs* in between, where every VM's local
//!    events (submissions to live VMs, settle ticks, completions) replay
//!    in parallel up to the next control instant. Determinism holds
//!    because the event queue's `(time, seq)` order already sorts every
//!    control event against everything staged before it, cross-VM effects
//!    only ever originate at control instants, and the per-VM replay
//!    reproduces the queue's tick-coalescing rules with a one-slot
//!    `armed` deadline. See DESIGN.md §"Epoch-sharded replay" for the
//!    full horizon rule and ordering argument.
//!
//! 3. **Dependency-aware epochs** ([`run_epochs_dag`]) for workflow
//!    DAGs, with or without fault shaping. A dependency edge can release
//!    a successor at any completion, so the driver replaces the
//!    next-control horizon with a *release barrier*: replay is bounded by
//!    the earliest completion notification that can still release a
//!    cross-VM child. Releases whose children live on the **same VM** as
//!    every parent never cross the barrier at all — they resolve inside
//!    the VM's local replay (the broker's pending-parent counter for such
//!    a child is masked so it is never double-released), which is what
//!    lets co-located pipelines replay whole chains in one pass. See
//!    DESIGN.md §"Dependency-aware epochs" for the barrier soundness and
//!    determinism argument.
//!
//! Every workload shape now has a parallel path; `EngineFallback` is no
//! longer produced by any scenario.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rayon::prelude::*;

use crate::broker::Broker;
use crate::characteristics::CostModel;
use crate::cloudlet::{Cloudlet, CloudletStatus};
use crate::cloudlet_sched::{CloudletScheduler, RunningCloudlet, SchedulerKind};
use crate::cost::cloudlet_cost;
use crate::datacenter::{Datacenter, DatacenterBlueprint};
use crate::event::{Event, EventQueue, ScheduledEvent};
use crate::host::Host;
use crate::ids::{CloudletId, DatacenterId, EntityId, HostId, VmId};
use crate::kernel::{Context, Entity, RunStats, World};
use crate::network::{transfer_time, Topology};
use crate::time::SimTime;
use crate::vm::Vm;

/// Per-datacenter data the per-VM replay needs after placement.
struct DcInfo {
    scheduler: SchedulerKind,
    cost: CostModel,
}

/// Finished-cloudlet result produced by a shard.
struct Update {
    id: CloudletId,
    start: SimTime,
    finish: SimTime,
    cost: f64,
}

/// Everything a shard reports back for the deterministic merge.
struct ShardOut {
    updates: Vec<Update>,
    /// Latest event the shard's VMs would have put on the kernel clock
    /// (tick fires and completion returns, including output transfer).
    last_event: SimTime,
    /// `VmTick` events the sequential kernel would have delivered.
    ticks: u64,
}

/// Runs an eligible scenario on the sharded engine.
///
/// The caller ([`crate::simulation::SimulationBuilder::run`]) has already
/// validated the scenario and checked eligibility: no dependencies, no
/// fault injection (host failures, fault plans, recovery), no
/// resubmission.
pub(crate) fn run(
    world: &mut World,
    blueprints: Vec<DatacenterBlueprint>,
    vm_placement: &[DatacenterId],
    assignment: &[VmId],
    arrivals: Option<&[SimTime]>,
    topology: &Topology,
) -> RunStats {
    let dc_count = blueprints.len();

    // ---- Phase 1: VM placement, exactly as the kernel would order it.
    //
    // The kernel delivers `VmCreate`s ordered by (arrival time, push
    // sequence). All of a datacenter's creates share one latency and were
    // pushed in VM-index order, so each datacenter sees its VMs in index
    // order — which a single index-order loop over disjoint per-DC state
    // reproduces.
    let mut dc_infos = Vec::with_capacity(dc_count);
    let mut dc_states = Vec::with_capacity(dc_count);
    for blueprint in blueprints {
        assert!(!blueprint.hosts.is_empty(), "datacenter needs hosts");
        let hosts: Vec<Host> = blueprint
            .hosts
            .into_iter()
            .enumerate()
            .map(|(i, spec)| Host::new(HostId::from_index(i), spec))
            .collect();
        dc_states.push((hosts, blueprint.allocation));
        dc_infos.push(DcInfo {
            scheduler: blueprint.scheduler,
            cost: blueprint.characteristics.cost,
        });
    }
    // The broker submits cloudlets when the last ack lands: each ack
    // arrives at its datacenter's latency, so readiness is the max.
    let mut t_ready = SimTime::ZERO;
    for (idx, dc) in vm_placement.iter().enumerate() {
        let vm_id = VmId::from_index(idx);
        world.vm_mut(vm_id).status = crate::vm::VmStatus::Requested;
        t_ready = t_ready.max(topology.latency_to(*dc));
        let spec = world.vm(vm_id).spec.clone();
        let (hosts, allocation) = &mut dc_states[dc.index()];
        let placed = allocation.select_host(hosts, &spec).and_then(|host_id| {
            let host = &mut hosts[host_id.index()];
            host.allocate_vm(vm_id, &spec).then_some(host_id)
        });
        match placed {
            Some(host_id) => world.vm_mut(vm_id).place(*dc, host_id),
            None => world.vm_mut(vm_id).reject(),
        }
    }
    drop(dc_states);

    // ---- Phase 2: submission grouping, mirroring the broker's batch
    // path bit for bit (same delay arithmetic, same group keys, same
    // first-occurrence order).
    let mut groups: Vec<(VmId, SimTime, Vec<CloudletId>)> = Vec::new();
    let mut group_of: HashMap<(u32, u64), usize> = HashMap::new();
    for idx in 0..assignment.len() {
        let cloudlet = CloudletId::from_index(idx);
        let vm_id = assignment[idx];
        let vm = world.vm(vm_id);
        if !vm.is_active() {
            world.cloudlet_mut(cloudlet).status = CloudletStatus::Failed;
            continue;
        }
        let dc = vm.datacenter.expect("active VM has a datacenter");
        let latency = topology.latency_to(dc);
        let spec = &world.cloudlets[idx].spec;
        let in_delay = transfer_time(spec.file_size_mb, vm.spec.bw_mbps);
        let wait = arrivals
            .map(|a| a[idx].saturating_sub(t_ready))
            .unwrap_or(SimTime::ZERO);
        let delay = wait + latency + in_delay;
        {
            let cl = world.cloudlet_mut(cloudlet);
            cl.submit_time = Some(t_ready + wait);
            cl.vm = Some(vm_id);
        }
        let slot = *group_of
            .entry((vm_id.0, delay.as_millis().to_bits()))
            .or_insert_with(|| {
                groups.push((vm_id, t_ready + delay, Vec::new()));
                groups.len() - 1
            });
        groups[slot].2.push(cloudlet);
    }
    let group_count = groups.len() as u64;

    // ---- Phase 3: per-VM replay across shards.
    let vm_count = world.vms.len();
    let mut per_vm: Vec<Vec<(SimTime, Vec<CloudletId>)>> = vec![Vec::new(); vm_count];
    for (vm_id, delivery, cls) in groups {
        per_vm[vm_id.index()].push((delivery, cls));
    }
    for subs in &mut per_vm {
        // Stable by delivery time: equal-time groups (distinct delays that
        // round to one instant) keep the broker's first-occurrence order.
        subs.sort_by_key(|g| g.0);
    }

    let threads = rayon::current_num_threads().max(1);
    let chunk = vm_count.div_ceil(threads).max(1);
    let ranges: Vec<(usize, usize)> = (0..vm_count)
        .step_by(chunk)
        .map(|lo| (lo, (lo + chunk).min(vm_count)))
        .collect();
    let vms = &world.vms;
    let cloudlets = &world.cloudlets;
    let per_vm_ref = &per_vm;
    let dc_infos_ref = &dc_infos;
    let shard_results: Vec<ShardOut> = ranges
        .into_par_iter()
        .map(|(lo, hi)| {
            let mut out = ShardOut {
                updates: Vec::new(),
                last_event: SimTime::ZERO,
                ticks: 0,
            };
            for vi in lo..hi {
                replay_vm(&vms[vi], &per_vm_ref[vi], cloudlets, dc_infos_ref, &mut out);
            }
            out
        })
        .collect();

    // ---- Deterministic merge. Shard results cover disjoint cloudlets
    // (each belongs to exactly one VM), so merge order cannot matter; we
    // still apply them in shard order.
    let start_events = dc_count as u64 + 1; // every entity gets a Start
    let mut events = start_events + 2 * vm_count as u64 + group_count;
    let mut end_time = t_ready;
    for shard in shard_results {
        end_time = end_time.max(shard.last_event);
        events += shard.ticks + shard.updates.len() as u64;
        for u in shard.updates {
            let cl = world.cloudlet_mut(u.id);
            cl.status = CloudletStatus::Finished;
            cl.start_time = Some(u.start);
            cl.finish_time = Some(u.finish);
            cl.cost = u.cost;
        }
    }
    RunStats {
        end_time,
        events_processed: events,
        drained: true,
    }
}

/// Replays one VM's event sequence: submission batches interleaved with
/// the coalesced tick timer, exactly as the sequential kernel delivers
/// them.
fn replay_vm(
    vm: &Vm,
    subs: &[(SimTime, Vec<CloudletId>)],
    cloudlets: &[Cloudlet],
    dc_infos: &[DcInfo],
    out: &mut ShardOut,
) {
    if subs.is_empty() {
        return;
    }
    let dc = vm.datacenter.expect("VM with submissions is placed");
    let info = &dc_infos[dc.index()];
    let mut sched = info.scheduler.build(vm.spec.mips, vm.spec.pes);
    // The one-slot armed deadline reproduces the event queue's per-VM
    // coalescing: at most one live tick, superseded only by an earlier
    // one (see `EventQueue::push_vm_tick`).
    let mut armed: Option<SimTime> = None;
    let mut gi = 0usize;
    let mut starts: HashMap<CloudletId, SimTime> = HashMap::new();
    loop {
        // Next event is the earlier of the next submission batch and the
        // armed tick. On a tie the submission wins: submission events were
        // pushed when the fleet came up, before any tick could be armed,
        // so they carry lower sequence numbers.
        let next_sub = subs.get(gi).map(|g| g.0);
        let (now, is_sub) = match (next_sub, armed) {
            (Some(s), Some(a)) => {
                if s <= a {
                    (s, true)
                } else {
                    (a, false)
                }
            }
            (Some(s), None) => (s, true),
            (None, Some(a)) => (a, false),
            (None, None) => break,
        };
        out.last_event = out.last_event.max(now);
        let tick = if is_sub {
            let batch: Vec<RunningCloudlet> = subs[gi]
                .1
                .iter()
                .map(|&c| {
                    let cl = &cloudlets[c.index()];
                    RunningCloudlet::new(c, cl.spec.length_mi, cl.spec.pes)
                })
                .collect();
            gi += 1;
            sched.submit_many(now, batch)
        } else {
            armed = None;
            out.ticks += 1;
            sched.advance(now)
        };
        for c in &tick.started {
            starts.insert(*c, now);
        }
        for &c in &tick.finished {
            let start = starts[&c];
            // Mirrors `Datacenter::apply_tick`: cost from the execution
            // span, completion notified after the output transfer.
            let cpu_seconds = now.saturating_sub(start).as_secs();
            let spec = &cloudlets[c.index()].spec;
            let cost = cloudlet_cost(&info.cost, &vm.spec, spec, cpu_seconds);
            let out_delay = transfer_time(spec.output_size_mb, vm.spec.bw_mbps);
            out.last_event = out.last_event.max(now + out_delay);
            out.updates.push(Update {
                id: c,
                start,
                finish: now,
                cost,
            });
        }
        if let Some(p) = tick.next_completion {
            let t = p.max(now);
            if armed.is_none_or(|a| t < a || a < now) {
                armed = Some(t);
            }
        }
    }
}

// ====================================================================
// Epoch-sharded replay: faults, recovery and resubmission.
// ====================================================================

/// A VM-local delivery diverted from the event queue, awaiting replay.
enum Staged {
    /// A delivered `VmTick`: the queue's armed settle deadline fired.
    /// Folded back into the replay's local `armed` slot rather than kept
    /// as an inbox entry, so mid-epoch re-arms supersede it exactly like
    /// the queue's lazy deletion would.
    Tick,
    /// A `CloudletSubmit` bound for a live VM.
    Single(CloudletId),
    /// A `CloudletSubmitBatch` bound for a live VM.
    Batch(Vec<CloudletId>),
}

/// A completion notification produced by a replay segment, pending
/// delivery to the real broker at an epoch boundary.
struct PendingReturn {
    at: SimTime,
    /// Generation order: stable tie-break for same-instant returns.
    ord: u64,
    cloudlet: CloudletId,
}

impl PartialEq for PendingReturn {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.ord == other.ord
    }
}
impl Eq for PendingReturn {}
impl PartialOrd for PendingReturn {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingReturn {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .cmp(&other.at)
            .then_with(|| self.ord.cmp(&other.ord))
    }
}

/// Input to one VM's parallel replay segment.
struct Segment {
    vm: VmId,
    dc: usize,
    /// Submissions staged this epoch, in queue pop (= kernel) order.
    subs: Vec<(SimTime, Staged)>,
    /// The queue tick this epoch already popped for the VM, if any.
    popped_tick: Option<SimTime>,
    /// The queue's armed-tick slot at flush time (un-popped deadline).
    armed_before: Option<SimTime>,
    sched: Box<dyn CloudletScheduler>,
    cost: CostModel,
}

/// One finished cloudlet from a replay segment.
struct FinishedCl {
    id: CloudletId,
    finish: SimTime,
    cost: f64,
    return_at: SimTime,
}

/// Everything a replay segment reports back for the sequential commit.
struct SegmentOut {
    vm: VmId,
    dc: usize,
    sched: Box<dyn CloudletScheduler>,
    /// Cloudlets delivered to the VM this epoch (status → Queued).
    queued: Vec<CloudletId>,
    /// Start transitions, in event order (start time set iff unset).
    started: Vec<(CloudletId, SimTime)>,
    finished: Vec<FinishedCl>,
    /// Submission events delivered (one per staged submit or batch).
    sub_events: u64,
    /// `VmTick` events delivered.
    ticks: u64,
    /// Latest event time the segment put on the clock (including
    /// completion returns' output-transfer delay).
    last_event: SimTime,
    /// Time of the last event the segment actually processed.
    last_now: SimTime,
    armed_before: Option<SimTime>,
    armed_after: Option<SimTime>,
}

/// The epoch driver's mutable state.
struct Driver {
    queue: EventQueue,
    clock: SimTime,
    processed: u64,
    /// Per-VM staged deliveries awaiting the next epoch flush.
    inbox: HashMap<VmId, Vec<(SimTime, Staged)>>,
    returns: BinaryHeap<Reverse<PendingReturn>>,
    return_ord: u64,
    broker_id: EntityId,
}

/// Runs a fault-injected, recovering or resubmitting scenario on the
/// epoch-sharded engine.
///
/// The caller ([`crate::simulation::SimulationBuilder::run`]) has
/// validated the scenario and built the *real* datacenter and broker
/// entities exactly as the sequential kernel would. This driver replays
/// the same event stream: control events (placement, host failures and
/// repairs, VM degrades, submissions landing on dead VMs, cloudlet
/// failures, retry wake-ups) are dispatched to the real entity handlers
/// in queue order, while VM-local deliveries in between are staged and
/// replayed in parallel at the next control instant. Workflow DAGs route
/// to [`run_epochs_dag`] instead, which adds the release barrier.
pub(crate) fn run_epochs(
    world: &mut World,
    dcs: &mut [Datacenter],
    broker: &mut Broker,
    max_events: u64,
) -> RunStats {
    let broker_id = EntityId::from_index(dcs.len());
    let mut driver = Driver {
        queue: EventQueue::new(),
        clock: SimTime::ZERO,
        processed: 0,
        inbox: HashMap::new(),
        returns: BinaryHeap::new(),
        return_ord: 0,
        broker_id,
    };
    // Start every entity at t=0 in registration order, as the kernel does.
    for i in 0..=dcs.len() {
        let id = EntityId::from_index(i);
        driver.queue.push(SimTime::ZERO, id, id, Event::Start);
    }
    // The kernel learns the broker address from the first submission; the
    // driver diverts submissions around the entity, so pre-seed the hint
    // (only ever read once submissions have landed — equivalent).
    for dc in dcs.iter_mut() {
        dc.set_broker_hint(broker_id);
    }

    while let Some(ev) = driver.queue.pop() {
        match ev.event {
            Event::VmTick { vm } => {
                driver.stage(vm, ev.time, Staged::Tick);
                continue;
            }
            Event::CloudletSubmit { cloudlet, vm } if world.vm(vm).is_active() => {
                driver.stage(vm, ev.time, Staged::Single(cloudlet));
                continue;
            }
            Event::CloudletSubmitBatch { vm, ref cloudlets } if world.vm(vm).is_active() => {
                let batch = cloudlets.clone();
                driver.stage(vm, ev.time, Staged::Batch(batch));
                continue;
            }
            _ => {}
        }
        // A control event. Everything staged so far was popped before it,
        // i.e. is kernel-ordered before it: replay up to this instant,
        // deliver matured completions, then run the real handler on the
        // merged state.
        driver.flush(world, dcs, Some(ev.time));
        driver.deliver_returns(world, broker, Some(ev.time));
        driver.clock = driver.clock.max(ev.time);
        driver.processed += 1;
        if driver.processed > max_events {
            return RunStats {
                end_time: driver.clock,
                events_processed: driver.processed,
                drained: false,
            };
        }
        let dest = ev.dest;
        let mut ctx = Context::attach(ev.time, dest, &mut driver.queue);
        if dest.index() < dcs.len() {
            dcs[dest.index()].handle(world, &mut ctx, ev);
        } else {
            broker.handle(world, &mut ctx, ev);
        }
    }
    // Queue drained: replay whatever is still staged to completion, then
    // deliver the remaining returns (which push nothing further — the
    // broker's return handler only folds counters when there is no DAG).
    driver.flush(world, dcs, None);
    driver.deliver_returns(world, broker, None);
    debug_assert!(driver.queue.is_empty(), "epoch driver left events behind");
    let drained = driver.processed <= max_events;
    RunStats {
        end_time: driver.clock,
        events_processed: driver.processed,
        drained,
    }
}

impl Driver {
    fn stage(&mut self, vm: VmId, time: SimTime, staged: Staged) {
        self.inbox.entry(vm).or_default().push((time, staged));
    }

    /// Replays every staged VM up to `horizon` (exclusive; `None` = to
    /// completion), commits the results to the world in a deterministic
    /// order and reconciles each VM's armed tick with the queue.
    fn flush(&mut self, world: &mut World, dcs: &mut [Datacenter], horizon: Option<SimTime>) {
        if self.inbox.is_empty() {
            return;
        }
        let mut keys: Vec<VmId> = self.inbox.keys().copied().collect();
        keys.sort_unstable_by_key(|vm| vm.index());
        let mut segs: Vec<Segment> = Vec::with_capacity(keys.len());
        for vm in keys {
            let mut entries = self.inbox.remove(&vm).expect("key just listed");
            let mut popped_tick = None;
            entries.retain(|(t, s)| {
                if matches!(s, Staged::Tick) {
                    popped_tick = Some(*t);
                    false
                } else {
                    true
                }
            });
            let dc = world
                .vm(vm)
                .datacenter
                .expect("staged deliveries imply placement")
                .index();
            let sched = dcs[dc]
                .take_sched(vm)
                .expect("staged deliveries imply a live scheduler");
            segs.push(Segment {
                vm,
                dc,
                subs: entries,
                popped_tick,
                armed_before: self.queue.armed_tick(vm),
                sched,
                cost: dcs[dc].characteristics().cost,
            });
        }
        let vms = &world.vms;
        let cloudlets = &world.cloudlets;
        let outs: Vec<SegmentOut> = if segs.len() > 1 {
            segs.into_par_iter()
                .map(|s| replay_segment(s, vms, cloudlets, horizon))
                .collect()
        } else {
            segs.into_iter()
                .map(|s| replay_segment(s, vms, cloudlets, horizon))
                .collect()
        };
        for out in outs {
            self.processed += out.ticks + out.sub_events;
            self.clock = self.clock.max(out.last_event);
            let dc_id = EntityId::from_index(out.dc);
            dcs[out.dc].put_sched(out.vm, out.sched);
            dcs[out.dc].note_completed(out.finished.len() as u64);
            if out.armed_after != out.armed_before {
                self.queue.cancel_vm_tick(out.vm);
                if let Some(t) = out.armed_after {
                    self.queue
                        .push_vm_tick(out.last_now, dc_id, dc_id, out.vm, t);
                }
            }
            // Commit in the kernel's per-cloudlet transition order:
            // delivery (Queued) → start (Running) → finish.
            for &c in &out.queued {
                let cl = world.cloudlet_mut(c);
                cl.status = CloudletStatus::Queued;
                cl.vm = Some(out.vm);
            }
            for &(c, t) in &out.started {
                let cl = world.cloudlet_mut(c);
                if cl.start_time.is_none() {
                    cl.start_time = Some(t);
                }
                cl.status = CloudletStatus::Running;
            }
            for f in out.finished {
                let cl = world.cloudlet_mut(f.id);
                cl.finish_time = Some(f.finish);
                cl.status = CloudletStatus::Finished;
                cl.cost = f.cost;
                self.returns.push(Reverse(PendingReturn {
                    at: f.return_at,
                    ord: self.return_ord,
                    cloudlet: f.id,
                }));
                self.return_ord += 1;
            }
        }
    }

    /// Delivers matured completion notifications to the real broker, in
    /// (time, generation) order. With no workflow DAG the return handler
    /// only folds counters, so delivering at epoch granularity instead of
    /// interleaved with bulk ticks is unobservable.
    fn deliver_returns(
        &mut self,
        world: &mut World,
        broker: &mut Broker,
        horizon: Option<SimTime>,
    ) {
        while let Some(Reverse(head)) = self.returns.peek() {
            if horizon.is_some_and(|h| head.at >= h) {
                break;
            }
            let Reverse(r) = self.returns.pop().expect("peeked entry pops");
            self.processed += 1;
            self.clock = self.clock.max(r.at);
            let ev = ScheduledEvent {
                time: r.at,
                seq: 0,
                dest: self.broker_id,
                src: self.broker_id,
                event: Event::CloudletReturn {
                    cloudlet: r.cloudlet,
                },
            };
            let mut ctx = Context::attach(r.at, self.broker_id, &mut self.queue);
            broker.handle(world, &mut ctx, ev);
        }
    }
}

// ====================================================================
// Dependency-aware epochs: workflow DAGs on the sharded engine.
// ====================================================================

/// The dependency table the DAG epoch driver replays against, compiled
/// once from the scenario before the entities are built.
///
/// Children are classified by where their release can be resolved:
///
/// * **local** — every parent is assigned to the same VM as the child
///   (and no fault shaping can move work between VMs). The release is
///   resolved entirely inside that VM's replay lane; the broker's
///   pending-parent counter for the child is masked so the parent's
///   completion notification never double-releases it.
/// * **cross** — anything else. The release goes through the real
///   broker's `CloudletReturn` handler, and the parent's completion is a
///   *release barrier* event: no lane may replay past it until it is
///   delivered.
///
/// Under fault shaping (host failures, recovery, resubmission) every
/// child is cross: resubmission can rewrite the assignment mid-run, so
/// the static same-VM classification would be unsound.
pub(crate) struct DagPlan {
    /// CSR offsets into `local_child`: `local_off[p]..local_off[p+1]`
    /// are the locally-released children of parent `p`.
    local_off: Vec<u32>,
    local_child: Vec<u32>,
    /// Parents with at least one cross child — their completions bound
    /// the release barrier.
    has_cross: Vec<bool>,
    /// Children resolved locally: masked in the broker.
    local_mask: Vec<bool>,
    /// Per-VM `(child, unfinished-local-parents)` counters, sorted by
    /// child id; moved into the lanes at driver start.
    lane_pending: Vec<Vec<(u32, u32)>>,
    /// Inputs the in-lane release arithmetic shares with
    /// `Broker::submit_one`.
    arrivals: Option<Vec<SimTime>>,
    topology: Topology,
}

impl DagPlan {
    /// Classifies every dependency edge and builds the replay table.
    pub(crate) fn compile(
        parents: &[Vec<CloudletId>],
        assignment: &[VmId],
        vm_count: usize,
        fault_shaped: bool,
        arrivals: Option<Vec<SimTime>>,
        topology: Topology,
    ) -> DagPlan {
        let n = parents.len();
        let mut local_mask = vec![false; n];
        if !fault_shaped {
            for (c, ps) in parents.iter().enumerate() {
                local_mask[c] =
                    !ps.is_empty() && ps.iter().all(|p| assignment[p.index()] == assignment[c]);
            }
        }
        let mut local_counts = vec![0u32; n];
        let mut has_cross = vec![false; n];
        for (c, ps) in parents.iter().enumerate() {
            for p in ps {
                if local_mask[c] {
                    local_counts[p.index()] += 1;
                } else {
                    has_cross[p.index()] = true;
                }
            }
        }
        let mut local_off = vec![0u32; n + 1];
        for i in 0..n {
            local_off[i + 1] = local_off[i] + local_counts[i];
        }
        let mut cursor = local_off.clone();
        let mut local_child = vec![0u32; local_off[n] as usize];
        // Child ids ascend within each parent's slice (the fill loop runs
        // in child order), matching the broker's release order for the
        // same parent.
        for (c, ps) in parents.iter().enumerate() {
            if local_mask[c] {
                for p in ps {
                    let slot = &mut cursor[p.index()];
                    local_child[*slot as usize] = c as u32;
                    *slot += 1;
                }
            }
        }
        let mut lane_pending: Vec<Vec<(u32, u32)>> = vec![Vec::new(); vm_count];
        for (c, ps) in parents.iter().enumerate() {
            if local_mask[c] {
                lane_pending[assignment[c].index()]
                    .push((c as u32, u32::try_from(ps.len()).expect("parents fit u32")));
            }
        }
        DagPlan {
            local_off,
            local_child,
            has_cross,
            local_mask,
            lane_pending,
            arrivals,
            topology,
        }
    }

    fn local_children(&self, parent: CloudletId) -> &[u32] {
        let lo = self.local_off[parent.index()] as usize;
        let hi = self.local_off[parent.index() + 1] as usize;
        &self.local_child[lo..hi]
    }

    fn has_local_children(&self, parent: CloudletId) -> bool {
        self.local_off[parent.index()] < self.local_off[parent.index() + 1]
    }
}

/// How far one lane-replay call may advance.
#[derive(Clone, Copy)]
enum Bound {
    /// A control instant: everything staged from the queue fires (it was
    /// popped before the control, so it is kernel-ordered before it);
    /// lane-local content (release notifications, released submissions)
    /// fires strictly before the instant; a tick exactly at the instant
    /// fires only if the queue already popped it.
    Control(SimTime),
    /// A release round: everything at or before the barrier fires.
    Round(SimTime),
    /// Final drain: replay to completion.
    All,
}

/// One VM's staged work between flushes, plus its local release state.
#[derive(Default)]
struct Lane {
    /// Queue-staged submissions in pop (= kernel) order, consumed from
    /// `head`. Pop times are globally nondecreasing, so this stays
    /// sorted by construction.
    subs: Vec<(SimTime, CloudletId)>,
    head: usize,
    /// The queue tick already popped for this VM, if any.
    popped_tick: Option<SimTime>,
    /// Completion notifications of same-VM parents pending local release
    /// processing, ordered by (return time, generation).
    local_rets: BinaryHeap<Reverse<(SimTime, u64, CloudletId)>>,
    ret_ord: u64,
    /// Locally released submissions, ordered by (arrival, generation).
    /// Kept apart from `subs`: at equal times queue-staged submissions
    /// carry lower kernel sequence numbers and must fire first.
    local_subs: BinaryHeap<Reverse<(SimTime, u64, CloudletId)>>,
    sub_ord: u64,
    /// `(child, unfinished-local-parents)`, sorted by child id.
    local_pending: Vec<(u32, u32)>,
    /// Guard against selecting the lane twice in one flush.
    in_round: bool,
}

impl Lane {
    /// Earliest pending lane event, if any (queue-armed ticks live in the
    /// queue and are not lane content).
    fn next_time(&self) -> Option<SimTime> {
        let mut t = self.subs.get(self.head).map(|e| e.0);
        if let Some(Reverse((rt, _, _))) = self.local_rets.peek() {
            t = Some(t.map_or(*rt, |x| x.min(*rt)));
        }
        if let Some(Reverse((st, _, _))) = self.local_subs.peek() {
            t = Some(t.map_or(*st, |x| x.min(*st)));
        }
        if let Some(pt) = self.popped_tick {
            t = Some(t.map_or(pt, |x| x.min(pt)));
        }
        t
    }

    fn has_content(&self) -> bool {
        self.next_time().is_some()
    }
}

/// Input to one lane's parallel replay.
struct LaneSeg {
    vm: VmId,
    dc: usize,
    lane: Lane,
    armed_before: Option<SimTime>,
    sched: Box<dyn CloudletScheduler>,
    cost: CostModel,
    /// Broker→datacenter latency for this lane's datacenter (release
    /// arithmetic input).
    latency: SimTime,
}

/// Everything a lane replay reports back for the sequential commit.
struct LaneOut {
    vm: VmId,
    dc: usize,
    sched: Box<dyn CloudletScheduler>,
    /// The lane, with consumed entries removed and any still-pending
    /// local content retained for later rounds.
    lane: Lane,
    queued: Vec<CloudletId>,
    started: Vec<(CloudletId, SimTime)>,
    finished: Vec<FinishedCl>,
    /// Locally released children and their submit times (committed to the
    /// world exactly as `Broker::submit_one` would set them).
    released: Vec<(CloudletId, SimTime)>,
    sub_events: u64,
    ticks: u64,
    last_event: SimTime,
    last_now: SimTime,
    armed_before: Option<SimTime>,
    armed_after: Option<SimTime>,
}

/// The DAG epoch driver's mutable state.
struct DagDriver {
    queue: EventQueue,
    clock: SimTime,
    processed: u64,
    lanes: Vec<Lane>,
    /// Lazy min-heap of `(lane next-event time, vm)`; entries are
    /// validated against the lane's actual next event on peek.
    dirty: BinaryHeap<Reverse<(SimTime, u32)>>,
    returns: BinaryHeap<Reverse<PendingReturn>>,
    /// Mirror of `returns` restricted to barrier-relevant (cross-child)
    /// completions: its head is the earliest pending release.
    rel_ats: BinaryHeap<Reverse<SimTime>>,
    return_ord: u64,
    /// Cross-child cloudlets currently staged or executing in a lane.
    /// While any exist, replay is also bounded by the earliest lane
    /// event (their completion times are not yet known).
    rel_inflight: u64,
    in_flight: Vec<bool>,
    broker_id: EntityId,
}

/// Runs a workflow-DAG scenario (with or without fault shaping) on the
/// epoch-sharded engine.
///
/// The loop alternates between draining every queue event at or before
/// the current release barrier — bulk deliveries are staged into lanes,
/// control events are handled by the real entities after a bounded
/// flush — and *release rounds* that replay all lanes up to the barrier
/// and deliver matured completions to the real broker (whose
/// `CloudletReturn` handler performs the cross releases). The barrier
/// `B = min(R, G)` is sound: any future cross release happens at the
/// return time of a pending completion (≥ R), or downstream of a staged
/// cross-parent cloudlet whose completion is no earlier than its lane's
/// next event (≥ G, inductively over release chains); queue events are
/// never outrun because rounds fire only when the earliest deliverable
/// queue event lies beyond the barrier.
pub(crate) fn run_epochs_dag(
    world: &mut World,
    dcs: &mut [Datacenter],
    broker: &mut Broker,
    max_events: u64,
    mut plan: DagPlan,
) -> RunStats {
    let broker_id = EntityId::from_index(dcs.len());
    let n = world.cloudlets.len();
    let vm_count = world.vms.len();
    // Mask locally resolved children so the broker never double-releases
    // them (their counters keep a sentinel excess that no return clears).
    for (c, &masked) in plan.local_mask.iter().enumerate() {
        if masked {
            broker.mask_release(CloudletId::from_index(c));
        }
    }
    let mut lanes: Vec<Lane> = Vec::with_capacity(vm_count);
    for pending in std::mem::take(&mut plan.lane_pending) {
        lanes.push(Lane {
            local_pending: pending,
            ..Lane::default()
        });
    }
    lanes.resize_with(vm_count, Lane::default);
    let mut driver = DagDriver {
        queue: EventQueue::new(),
        clock: SimTime::ZERO,
        processed: 0,
        lanes,
        dirty: BinaryHeap::new(),
        returns: BinaryHeap::new(),
        rel_ats: BinaryHeap::new(),
        return_ord: 0,
        rel_inflight: 0,
        in_flight: vec![false; n],
        broker_id,
    };
    for i in 0..=dcs.len() {
        let id = EntityId::from_index(i);
        driver.queue.push(SimTime::ZERO, id, id, Event::Start);
    }
    for dc in dcs.iter_mut() {
        dc.set_broker_hint(broker_id);
    }

    loop {
        let barrier = driver.barrier();
        let head = driver.queue.peek_deliverable_time();
        if let Some(t) = head {
            if barrier.is_none_or(|b| t <= b) {
                let ev = driver.queue.pop().expect("deliverable head pops");
                match ev.event {
                    Event::VmTick { vm } => {
                        driver.stage_tick(vm, ev.time);
                    }
                    Event::CloudletSubmit { cloudlet, vm } if world.vm(vm).is_active() => {
                        driver.stage_sub(vm, ev.time, cloudlet, &plan);
                    }
                    _ => {
                        // A control event: cloudlet failures, host faults
                        // and repairs, degrades, retry wake-ups, placement
                        // traffic, dead-VM submissions. Everything staged
                        // at or before it replays first, matured
                        // completions deliver first — kernel order.
                        if let Event::CloudletFailed { cloudlet } = ev.event {
                            driver.note_failed(cloudlet);
                        }
                        driver.flush(world, dcs, Bound::Control(ev.time), &plan);
                        driver.deliver_returns(world, broker, Some(ev.time), false, &plan);
                        driver.clock = driver.clock.max(ev.time);
                        driver.processed += 1;
                        if driver.processed > max_events {
                            return RunStats {
                                end_time: driver.clock,
                                events_processed: driver.processed,
                                drained: false,
                            };
                        }
                        let dest = ev.dest;
                        let mut ctx = Context::attach(ev.time, dest, &mut driver.queue);
                        if dest.index() < dcs.len() {
                            dcs[dest.index()].handle(world, &mut ctx, ev);
                        } else {
                            broker.handle(world, &mut ctx, ev);
                        }
                    }
                }
                continue;
            }
        }
        // Every deliverable queue event (if any) lies beyond the barrier:
        // run a release round, or the final drain when nothing bounds us.
        match barrier {
            Some(b) => {
                driver.flush(world, dcs, Bound::Round(b), &plan);
                driver.deliver_returns(world, broker, Some(b), true, &plan);
                if driver.processed > max_events {
                    return RunStats {
                        end_time: driver.clock,
                        events_processed: driver.processed,
                        drained: false,
                    };
                }
            }
            None => {
                driver.flush(world, dcs, Bound::All, &plan);
                driver.deliver_returns(world, broker, None, true, &plan);
                if driver.queue.peek_deliverable_time().is_none() {
                    break;
                }
            }
        }
    }
    debug_assert!(driver.queue.is_empty(), "DAG driver left events behind");
    debug_assert!(driver.returns.is_empty(), "undelivered completions");
    debug_assert!(
        driver.lanes.iter().all(|l| !l.has_content()),
        "DAG driver left lane content behind"
    );
    let drained = driver.processed <= max_events;
    RunStats {
        end_time: driver.clock,
        events_processed: driver.processed,
        drained,
    }
}

impl DagDriver {
    /// The release barrier: the earliest instant at which a cross release
    /// can still be injected. `None` when no cross release is pending or
    /// in flight anywhere.
    fn barrier(&mut self) -> Option<SimTime> {
        let r = self.rel_ats.peek().map(|Reverse(t)| *t);
        let g = if self.rel_inflight > 0 {
            self.peek_dirty()
        } else {
            None
        };
        match (r, g) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Earliest lane event across the fleet (validated lazy heap).
    fn peek_dirty(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((t, vm))) = self.dirty.peek() {
            if self.lanes[vm as usize].next_time() == Some(t) {
                return Some(t);
            }
            self.dirty.pop();
        }
        None
    }

    fn mark_dirty(&mut self, vm: VmId) {
        if let Some(t) = self.lanes[vm.index()].next_time() {
            self.dirty.push(Reverse((t, vm.0)));
        }
    }

    fn stage_tick(&mut self, vm: VmId, time: SimTime) {
        let lane = &mut self.lanes[vm.index()];
        debug_assert!(lane.popped_tick.is_none(), "one armed tick per VM");
        lane.popped_tick = Some(time);
        self.mark_dirty(vm);
    }

    fn stage_sub(&mut self, vm: VmId, time: SimTime, cloudlet: CloudletId, plan: &DagPlan) {
        self.lanes[vm.index()].subs.push((time, cloudlet));
        if plan.has_cross[cloudlet.index()] && !self.in_flight[cloudlet.index()] {
            self.in_flight[cloudlet.index()] = true;
            self.rel_inflight += 1;
        }
        self.mark_dirty(vm);
    }

    /// A `CloudletFailed` control was popped: if the cloudlet was staged
    /// as an in-flight cross parent (its host died, or recovery drained
    /// it), it can no longer complete — release the barrier hold. A
    /// later resubmission re-stages (and re-counts) it.
    fn note_failed(&mut self, cloudlet: CloudletId) {
        if self.in_flight[cloudlet.index()] {
            self.in_flight[cloudlet.index()] = false;
            self.rel_inflight -= 1;
        }
    }

    /// Replays every lane with an event due under `bound`, commits the
    /// results in ascending VM order and reconciles armed ticks.
    fn flush(&mut self, world: &mut World, dcs: &mut [Datacenter], bound: Bound, plan: &DagPlan) {
        let limit = match bound {
            Bound::Control(t) => Some(t),
            Bound::Round(b) => Some(b),
            Bound::All => None,
        };
        let mut due: Vec<VmId> = Vec::new();
        while let Some(&Reverse((t, vm))) = self.dirty.peek() {
            if limit.is_some_and(|b| t > b) {
                break;
            }
            self.dirty.pop();
            let lane = &mut self.lanes[vm as usize];
            if lane.next_time() == Some(t) && !lane.in_round {
                lane.in_round = true;
                due.push(VmId(vm));
            }
        }
        if due.is_empty() {
            return;
        }
        due.sort_unstable_by_key(|v| v.index());
        let mut segs: Vec<LaneSeg> = Vec::with_capacity(due.len());
        for vm in due {
            let mut lane = std::mem::take(&mut self.lanes[vm.index()]);
            lane.in_round = false;
            let dc = world
                .vm(vm)
                .datacenter
                .expect("lane content implies placement")
                .index();
            let sched = dcs[dc]
                .take_sched(vm)
                .expect("lane content implies a live scheduler");
            segs.push(LaneSeg {
                vm,
                dc,
                lane,
                armed_before: self.queue.armed_tick(vm),
                sched,
                cost: dcs[dc].characteristics().cost,
                latency: plan.topology.latency_to(DatacenterId::from_index(dc)),
            });
        }
        let vms = &world.vms;
        let cloudlets = &world.cloudlets;
        let outs: Vec<LaneOut> = if segs.len() > 1 {
            segs.into_par_iter()
                .map(|s| replay_lane(s, vms, cloudlets, plan, bound))
                .collect()
        } else {
            segs.into_iter()
                .map(|s| replay_lane(s, vms, cloudlets, plan, bound))
                .collect()
        };
        for out in outs {
            self.processed += out.ticks + out.sub_events;
            self.clock = self.clock.max(out.last_event);
            let dc_id = EntityId::from_index(out.dc);
            dcs[out.dc].put_sched(out.vm, out.sched);
            dcs[out.dc].note_completed(out.finished.len() as u64);
            if out.armed_after != out.armed_before {
                self.queue.cancel_vm_tick(out.vm);
                if let Some(t) = out.armed_after {
                    self.queue
                        .push_vm_tick(out.last_now, dc_id, dc_id, out.vm, t);
                }
            }
            for &c in &out.queued {
                let cl = world.cloudlet_mut(c);
                cl.status = CloudletStatus::Queued;
                cl.vm = Some(out.vm);
            }
            for &(c, t) in &out.released {
                world.cloudlet_mut(c).submit_time = Some(t);
            }
            for &(c, t) in &out.started {
                let cl = world.cloudlet_mut(c);
                if cl.start_time.is_none() {
                    cl.start_time = Some(t);
                }
                cl.status = CloudletStatus::Running;
            }
            for f in out.finished {
                let cl = world.cloudlet_mut(f.id);
                cl.finish_time = Some(f.finish);
                cl.status = CloudletStatus::Finished;
                cl.cost = f.cost;
                if self.in_flight[f.id.index()] {
                    self.in_flight[f.id.index()] = false;
                    self.rel_inflight -= 1;
                }
                if plan.has_cross[f.id.index()] {
                    self.rel_ats.push(Reverse(f.return_at));
                }
                self.returns.push(Reverse(PendingReturn {
                    at: f.return_at,
                    ord: self.return_ord,
                    cloudlet: f.id,
                }));
                self.return_ord += 1;
            }
            let vm = out.vm;
            self.lanes[vm.index()] = out.lane;
            self.mark_dirty(vm);
        }
    }

    /// Delivers matured completions to the real broker in (time,
    /// generation) order. Unlike the fault-only driver this is where
    /// cross releases actually happen: the broker's return handler
    /// decrements pending-parent counters and submits freed children.
    fn deliver_returns(
        &mut self,
        world: &mut World,
        broker: &mut Broker,
        bound: Option<SimTime>,
        inclusive: bool,
        plan: &DagPlan,
    ) {
        while let Some(Reverse(head)) = self.returns.peek() {
            let due = match bound {
                None => true,
                Some(h) if inclusive => head.at <= h,
                Some(h) => head.at < h,
            };
            if !due {
                break;
            }
            let Reverse(r) = self.returns.pop().expect("peeked entry pops");
            if plan.has_cross[r.cloudlet.index()] {
                let Some(Reverse(t)) = self.rel_ats.pop() else {
                    unreachable!("cross return delivered without barrier entry");
                };
                debug_assert_eq!(t, r.at, "barrier mirror out of sync");
            }
            self.processed += 1;
            self.clock = self.clock.max(r.at);
            let ev = ScheduledEvent {
                time: r.at,
                seq: 0,
                dest: self.broker_id,
                src: self.broker_id,
                event: Event::CloudletReturn {
                    cloudlet: r.cloudlet,
                },
            };
            let mut ctx = Context::attach(r.at, self.broker_id, &mut self.queue);
            broker.handle(world, &mut ctx, ev);
        }
    }
}

/// Replays one lane under `bound`: queue-staged submissions, locally
/// released submissions, local release notifications and the settle
/// timer, merged in kernel order.
fn replay_lane(
    seg: LaneSeg,
    vms: &[Vm],
    cloudlets: &[Cloudlet],
    plan: &DagPlan,
    bound: Bound,
) -> LaneOut {
    let LaneSeg {
        vm,
        dc,
        mut lane,
        armed_before,
        mut sched,
        cost,
        latency,
    } = seg;
    let vm_spec = &vms[vm.index()].spec;
    let mut out = LaneOut {
        vm,
        dc,
        sched: SchedulerKind::SpaceShared.build(1.0, 1), // placeholder, replaced below
        lane: Lane::default(),                           // placeholder, replaced below
        queued: Vec::new(),
        started: Vec::new(),
        finished: Vec::new(),
        released: Vec::new(),
        sub_events: 0,
        ticks: 0,
        last_event: SimTime::ZERO,
        last_now: SimTime::ZERO,
        armed_before,
        armed_after: None,
    };
    let popped_tick = lane.popped_tick;
    debug_assert!(
        armed_before.is_none() || popped_tick.is_none(),
        "popped and armed tick cannot coexist"
    );
    let mut armed = armed_before.or(popped_tick);
    let mut local_starts: HashMap<CloudletId, SimTime> = HashMap::new();
    // Event classes, in tie-break order at equal times:
    //   0 = local release notification (commutes with the submissions it
    //       does not create; processing it first means a same-instant
    //       released child lands *after* existing equal-time work, which
    //       is exactly the kernel's push-order),
    //   1 = queue-staged submission (lowest kernel seq),
    //   2 = locally released submission (pushed at release time, highest
    //       kernel seq),
    //   3 = settle tick (same-instant submit-then-settle commutes, as in
    //       `replay_segment`).
    loop {
        let mut best: Option<(SimTime, u8)> = None;
        let mut consider = |t: SimTime, class: u8, ok: bool| {
            if ok && best.is_none_or(|(bt, bc)| t < bt || (t == bt && class < bc)) {
                best = Some((t, class));
            }
        };
        if let Some(&Reverse((t, _, _))) = lane.local_rets.peek() {
            let ok = match bound {
                Bound::Control(c) => t < c,
                Bound::Round(b) => t <= b,
                Bound::All => true,
            };
            consider(t, 0, ok);
        }
        if let Some(&(t, _)) = lane.subs.get(lane.head) {
            let ok = match bound {
                // Queue-staged entries were popped before the control, so
                // they are kernel-ordered before it even at equal times.
                Bound::Control(c) => {
                    debug_assert!(t <= c, "staged submission beyond control instant");
                    true
                }
                Bound::Round(b) => t <= b,
                Bound::All => true,
            };
            consider(t, 1, ok);
        }
        if let Some(&Reverse((t, _, _))) = lane.local_subs.peek() {
            let ok = match bound {
                Bound::Control(c) => t < c,
                Bound::Round(b) => t <= b,
                Bound::All => true,
            };
            consider(t, 2, ok);
        }
        if let Some(t) = armed {
            let ok = match bound {
                Bound::Control(c) => t < c || popped_tick == Some(t),
                Bound::Round(b) => t <= b,
                Bound::All => true,
            };
            consider(t, 3, ok);
        }
        let Some((now, class)) = best else { break };
        if class == 0 {
            // A same-VM parent's completion notification: decrement the
            // local pending counters and release freed children with the
            // broker's exact submit arithmetic. Not a kernel event for
            // this lane — the completion itself is counted when the
            // driver delivers it to the broker.
            let Some(Reverse((at, _, parent))) = lane.local_rets.pop() else {
                unreachable!("peeked entry pops");
            };
            for &child in plan.local_children(parent) {
                let slot = lane
                    .local_pending
                    .binary_search_by_key(&child, |e| e.0)
                    .expect("local child has a pending counter");
                let entry = &mut lane.local_pending[slot];
                debug_assert!(entry.1 > 0, "local child released twice");
                entry.1 -= 1;
                if entry.1 == 0 {
                    let c = CloudletId(child);
                    let spec = &cloudlets[c.index()].spec;
                    let in_delay = transfer_time(spec.file_size_mb, vm_spec.bw_mbps);
                    let wait = plan
                        .arrivals
                        .as_ref()
                        .map(|a| a[c.index()].saturating_sub(at))
                        .unwrap_or(SimTime::ZERO);
                    out.released.push((c, at + wait));
                    lane.local_subs.push(Reverse((
                        at + wait + latency + in_delay,
                        lane.sub_ord,
                        c,
                    )));
                    lane.sub_ord += 1;
                }
            }
            continue;
        }
        out.last_now = now;
        out.last_event = out.last_event.max(now);
        let tick = match class {
            1 => {
                let (_, c) = lane.subs[lane.head];
                lane.head += 1;
                out.sub_events += 1;
                out.queued.push(c);
                let spec = &cloudlets[c.index()].spec;
                sched.submit(now, RunningCloudlet::new(c, spec.length_mi, spec.pes))
            }
            2 => {
                let Some(Reverse((_, _, c))) = lane.local_subs.pop() else {
                    unreachable!("peeked entry pops");
                };
                out.sub_events += 1;
                out.queued.push(c);
                let spec = &cloudlets[c.index()].spec;
                sched.submit(now, RunningCloudlet::new(c, spec.length_mi, spec.pes))
            }
            _ => {
                armed = None;
                out.ticks += 1;
                sched.advance(now)
            }
        };
        for &c in &tick.started {
            local_starts.entry(c).or_insert(now);
            out.started.push((c, now));
        }
        for &c in &tick.finished {
            let cl = &cloudlets[c.index()];
            let start = cl.start_time.or_else(|| local_starts.get(&c).copied());
            let cpu_seconds = start
                .map(|s| now.saturating_sub(s).as_secs())
                .unwrap_or(0.0);
            let cl_cost = cloudlet_cost(&cost, vm_spec, &cl.spec, cpu_seconds);
            let out_delay = transfer_time(cl.spec.output_size_mb, vm_spec.bw_mbps);
            let return_at = now + out_delay;
            out.last_event = out.last_event.max(return_at);
            if plan.has_local_children(c) {
                lane.local_rets.push(Reverse((return_at, lane.ret_ord, c)));
                lane.ret_ord += 1;
            }
            out.finished.push(FinishedCl {
                id: c,
                finish: now,
                cost: cl_cost,
                return_at,
            });
        }
        if let Some(p) = tick.next_completion {
            let t = p.max(now);
            if armed.is_none_or(|a| t < a || a < now) {
                armed = Some(t);
            }
        }
    }
    lane.popped_tick = None;
    if lane.head > 32 && lane.head * 2 >= lane.subs.len() {
        lane.subs.drain(..lane.head);
        lane.head = 0;
    }
    out.armed_after = armed;
    out.sched = sched;
    out.lane = lane;
    out
}

/// Replays one VM's staged deliveries (plus its local settle timer) up to
/// the epoch horizon, mirroring `Datacenter::handle_cloudlet_submit`,
/// `handle_vm_tick` and `apply_tick` against a private scheduler.
fn replay_segment(
    seg: Segment,
    vms: &[Vm],
    cloudlets: &[Cloudlet],
    horizon: Option<SimTime>,
) -> SegmentOut {
    let Segment {
        vm,
        dc,
        subs,
        popped_tick,
        armed_before,
        mut sched,
        cost,
    } = seg;
    let vm_spec = &vms[vm.index()].spec;
    let mut out = SegmentOut {
        vm,
        dc,
        sched: SchedulerKind::SpaceShared.build(1.0, 1), // placeholder, replaced below
        queued: Vec::new(),
        started: Vec::new(),
        finished: Vec::new(),
        sub_events: 0,
        ticks: 0,
        last_event: SimTime::ZERO,
        last_now: SimTime::ZERO,
        armed_before,
        armed_after: None,
    };
    // The armed deadline: either the slot still in the queue (>= horizon)
    // or the tick this epoch already popped — never both, since popping
    // clears the slot and nothing re-arms it until the flush.
    let mut armed = armed_before.or(popped_tick);
    let mut local_starts: HashMap<CloudletId, SimTime> = HashMap::new();
    let mut si = 0usize;
    loop {
        // Next event: earliest of the staged submissions and the armed
        // tick; a tie goes to the submission (kernel: a tick armed during
        // an earlier bulk phase would win, but a same-instant submit and
        // settle commute on the scheduler, so the states agree).
        let next_sub = subs.get(si).map(|g| g.0);
        let (now, is_sub) = match (next_sub, armed) {
            (Some(s), Some(a)) if a < s => (a, false),
            (Some(s), _) => (s, true),
            (None, Some(a)) => (a, false),
            (None, None) => break,
        };
        if !is_sub && horizon.is_some_and(|h| now >= h) && popped_tick != Some(now) {
            // The deadline survives past this epoch; hand it back to the
            // queue. (A tick chosen over a remaining submission is always
            // strictly below the horizon, so this only fires when the
            // submissions are exhausted.)
            break;
        }
        out.last_now = now;
        out.last_event = out.last_event.max(now);
        let tick = if is_sub {
            let (_, staged) = &subs[si];
            si += 1;
            out.sub_events += 1;
            match staged {
                Staged::Single(c) => {
                    out.queued.push(*c);
                    let spec = &cloudlets[c.index()].spec;
                    sched.submit(now, RunningCloudlet::new(*c, spec.length_mi, spec.pes))
                }
                Staged::Batch(cls) => {
                    out.queued.extend(cls.iter().copied());
                    let batch: Vec<RunningCloudlet> = cls
                        .iter()
                        .map(|&c| {
                            let spec = &cloudlets[c.index()].spec;
                            RunningCloudlet::new(c, spec.length_mi, spec.pes)
                        })
                        .collect();
                    sched.submit_many(now, batch)
                }
                Staged::Tick => unreachable!("ticks are folded into the armed deadline"),
            }
        } else {
            armed = None;
            out.ticks += 1;
            sched.advance(now)
        };
        for &c in &tick.started {
            local_starts.entry(c).or_insert(now);
            out.started.push((c, now));
        }
        for &c in &tick.finished {
            let cl = &cloudlets[c.index()];
            // Mirrors `Datacenter::apply_tick`: the effective start is the
            // earliest recorded one (world from earlier epochs, else this
            // segment), cost from the execution span, completion notified
            // after the output transfer.
            let start = cl.start_time.or_else(|| local_starts.get(&c).copied());
            let cpu_seconds = start
                .map(|s| now.saturating_sub(s).as_secs())
                .unwrap_or(0.0);
            let cl_cost = cloudlet_cost(&cost, vm_spec, &cl.spec, cpu_seconds);
            let out_delay = transfer_time(cl.spec.output_size_mb, vm_spec.bw_mbps);
            out.last_event = out.last_event.max(now + out_delay);
            out.finished.push(FinishedCl {
                id: c,
                finish: now,
                cost: cl_cost,
                return_at: now + out_delay,
            });
        }
        if let Some(p) = tick.next_completion {
            let t = p.max(now);
            if armed.is_none_or(|a| t < a || a < now) {
                armed = Some(t);
            }
        }
    }
    out.armed_after = armed;
    out.sched = sched;
    out
}
