//! Cloudlets — the unit of work scheduled onto VMs.
//!
//! A cloudlet is CloudSim's task abstraction: a fixed amount of compute
//! (`length` in million instructions) plus an input and output file that
//! must be moved over the VM's bandwidth. [`CloudletSpec`] mirrors the
//! paper's Table IV / Table VI fields.

use crate::ids::{CloudletId, VmId};
use crate::time::SimTime;

/// Static description of a cloudlet.
///
/// Field names follow the paper's Table IV: `cLength`, `cFileSize`,
/// `cOutputSize`, `cPesNumber`.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudletSpec {
    /// Compute demand in million instructions (MI).
    pub length_mi: f64,
    /// Input file size in MB (transferred in before execution).
    pub file_size_mb: f64,
    /// Output file size in MB (transferred out after execution).
    pub output_size_mb: f64,
    /// Number of PEs the cloudlet needs concurrently.
    pub pes: u32,
    /// Optional SLA deadline: the cloudlet should finish within this many
    /// milliseconds of its submission (the paper's introduction names
    /// "deadlines for hard real-time applications" and "SLA agreements"
    /// as the demands schedulers must react to).
    pub deadline_ms: Option<f64>,
}

impl CloudletSpec {
    /// Creates a spec with no deadline, validating every field.
    pub fn new(length_mi: f64, file_size_mb: f64, output_size_mb: f64, pes: u32) -> Self {
        let spec = CloudletSpec {
            length_mi,
            file_size_mb,
            output_size_mb,
            pes,
            deadline_ms: None,
        };
        spec.validate().expect("invalid CloudletSpec");
        spec
    }

    /// Attaches an SLA deadline (ms from submission).
    pub fn with_deadline(mut self, deadline_ms: f64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self.validate().expect("invalid CloudletSpec");
        self
    }

    /// Checks all fields for physical plausibility.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.length_mi.is_finite() && self.length_mi > 0.0) {
            return Err(format!(
                "CloudletSpec.length_mi must be positive, got {}",
                self.length_mi
            ));
        }
        for (name, v) in [
            ("file_size_mb", self.file_size_mb),
            ("output_size_mb", self.output_size_mb),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("CloudletSpec.{name} must be non-negative, got {v}"));
            }
        }
        if self.pes == 0 {
            return Err("CloudletSpec.pes must be at least 1".into());
        }
        if let Some(d) = self.deadline_ms {
            if !(d.is_finite() && d > 0.0) {
                return Err(format!(
                    "CloudletSpec.deadline_ms must be positive, got {d}"
                ));
            }
        }
        Ok(())
    }

    /// The paper's homogeneous-scenario cloudlet (Table IV).
    pub fn homogeneous_default() -> Self {
        CloudletSpec::new(250.0, 300.0, 300.0, 1)
    }
}

impl Default for CloudletSpec {
    fn default() -> Self {
        Self::homogeneous_default()
    }
}

/// Lifecycle state of a cloudlet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CloudletStatus {
    /// Declared but not yet submitted.
    #[default]
    Created,
    /// Submitted to a datacenter, waiting in a VM queue.
    Queued,
    /// Executing on a VM.
    Running,
    /// Completed.
    Finished,
    /// Could not run (e.g. its VM was rejected).
    Failed,
}

/// Execution record of one cloudlet, filled in as the simulation runs.
#[derive(Debug, Clone)]
pub struct Cloudlet {
    /// Identity in the world arena.
    pub id: CloudletId,
    /// Static demand.
    pub spec: CloudletSpec,
    /// Lifecycle state.
    pub status: CloudletStatus,
    /// VM the scheduler bound this cloudlet to.
    pub vm: Option<VmId>,
    /// Time the broker submitted the cloudlet.
    pub submit_time: Option<SimTime>,
    /// Time execution began on the VM.
    pub start_time: Option<SimTime>,
    /// Time execution finished.
    pub finish_time: Option<SimTime>,
    /// Accumulated processing cost (filled by the datacenter's cost model).
    pub cost: f64,
}

impl Cloudlet {
    /// Creates a fresh cloudlet.
    pub fn new(id: CloudletId, spec: CloudletSpec) -> Self {
        Cloudlet {
            id,
            spec,
            status: CloudletStatus::Created,
            vm: None,
            submit_time: None,
            start_time: None,
            finish_time: None,
            cost: 0.0,
        }
    }

    /// Wall (simulated) execution time: finish − start.
    ///
    /// `None` until the cloudlet has both started and finished.
    pub fn execution_time(&self) -> Option<SimTime> {
        match (self.start_time, self.finish_time) {
            (Some(s), Some(f)) => Some(f.saturating_sub(s)),
            _ => None,
        }
    }

    /// Total turnaround: finish − submit.
    pub fn turnaround_time(&self) -> Option<SimTime> {
        match (self.submit_time, self.finish_time) {
            (Some(s), Some(f)) => Some(f.saturating_sub(s)),
            _ => None,
        }
    }

    /// True once the cloudlet has completed successfully.
    #[inline]
    pub fn is_finished(&self) -> bool {
        self.status == CloudletStatus::Finished
    }

    /// SLA check: `Some(true)` if the cloudlet had a deadline and met it,
    /// `Some(false)` if it had one and missed (or failed), `None` if it
    /// carries no deadline.
    pub fn met_deadline(&self) -> Option<bool> {
        let deadline = self.spec.deadline_ms?;
        if self.status == CloudletStatus::Failed {
            return Some(false);
        }
        let turnaround = self.turnaround_time()?;
        Some(turnaround.as_millis() <= deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_defaults() {
        let c = CloudletSpec::homogeneous_default();
        assert_eq!(c.length_mi, 250.0);
        assert_eq!(c.file_size_mb, 300.0);
        assert_eq!(c.output_size_mb, 300.0);
        assert_eq!(c.pes, 1);
    }

    #[test]
    fn validation() {
        assert!(CloudletSpec {
            length_mi: 0.0,
            ..CloudletSpec::default()
        }
        .validate()
        .is_err());
        assert!(CloudletSpec {
            file_size_mb: -1.0,
            ..CloudletSpec::default()
        }
        .validate()
        .is_err());
        assert!(CloudletSpec {
            pes: 0,
            ..CloudletSpec::default()
        }
        .validate()
        .is_err());
        // zero-size files are allowed (pure-compute tasks)
        assert!(CloudletSpec {
            file_size_mb: 0.0,
            output_size_mb: 0.0,
            ..CloudletSpec::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn timing_math() {
        let mut c = Cloudlet::new(CloudletId(0), CloudletSpec::default());
        assert!(c.execution_time().is_none());
        c.submit_time = Some(SimTime::new(10.0));
        c.start_time = Some(SimTime::new(15.0));
        assert!(c.execution_time().is_none());
        c.finish_time = Some(SimTime::new(40.0));
        assert_eq!(c.execution_time().unwrap().as_millis(), 25.0);
        assert_eq!(c.turnaround_time().unwrap().as_millis(), 30.0);
    }

    #[test]
    fn deadline_validation_and_builder() {
        let c = CloudletSpec::homogeneous_default().with_deadline(500.0);
        assert_eq!(c.deadline_ms, Some(500.0));
        assert!(CloudletSpec {
            deadline_ms: Some(-1.0),
            ..CloudletSpec::default()
        }
        .validate()
        .is_err());
        assert!(CloudletSpec {
            deadline_ms: Some(f64::NAN),
            ..CloudletSpec::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn met_deadline_semantics() {
        let spec = CloudletSpec::homogeneous_default().with_deadline(100.0);
        let mut c = Cloudlet::new(CloudletId(0), spec);
        // No deadline info until it runs.
        assert_eq!(c.met_deadline(), None);
        c.submit_time = Some(SimTime::ZERO);
        c.start_time = Some(SimTime::new(10.0));
        c.finish_time = Some(SimTime::new(90.0));
        c.status = CloudletStatus::Finished;
        assert_eq!(c.met_deadline(), Some(true), "90ms turnaround <= 100ms");
        c.finish_time = Some(SimTime::new(150.0));
        assert_eq!(c.met_deadline(), Some(false));
        // Failed cloudlets with deadlines count as misses.
        let mut failed = Cloudlet::new(CloudletId(1), CloudletSpec::default().with_deadline(1.0));
        failed.status = CloudletStatus::Failed;
        assert_eq!(failed.met_deadline(), Some(false));
        // Best-effort cloudlets never report SLA results.
        let mut best_effort = Cloudlet::new(CloudletId(2), CloudletSpec::default());
        best_effort.submit_time = Some(SimTime::ZERO);
        best_effort.finish_time = Some(SimTime::new(1.0));
        best_effort.status = CloudletStatus::Finished;
        assert_eq!(best_effort.met_deadline(), None);
    }

    #[test]
    fn fresh_cloudlet_state() {
        let c = Cloudlet::new(CloudletId(7), CloudletSpec::default());
        assert_eq!(c.status, CloudletStatus::Created);
        assert!(!c.is_finished());
        assert_eq!(c.cost, 0.0);
        assert!(c.vm.is_none());
    }
}
