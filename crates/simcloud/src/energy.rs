//! Energy accounting.
//!
//! The paper's related work includes energy-aware schedulers ([27] Wang &
//! Wang); this module adds the standard linear power model so energy can
//! be reported as a fifth metric next to the paper's four. A machine draws
//! `idle_w` watts while powered and ramps linearly to `peak_w` at full
//! utilization — the model used throughout the CloudSim power package.

use crate::stats::SimulationOutcome;

/// Linear power model: `P(u) = idle + (peak − idle) · u`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Power draw at zero utilization, in watts.
    pub idle_w: f64,
    /// Power draw at full utilization, in watts.
    pub peak_w: f64,
}

impl PowerModel {
    /// Creates a model; peak must be at least idle.
    pub fn new(idle_w: f64, peak_w: f64) -> Self {
        assert!(
            idle_w >= 0.0 && peak_w >= idle_w,
            "need 0 <= idle ({idle_w}) <= peak ({peak_w})"
        );
        PowerModel { idle_w, peak_w }
    }

    /// Power draw at utilization `u ∈ [0, 1]` (clamped).
    pub fn power(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        self.idle_w + (self.peak_w - self.idle_w) * u
    }

    /// A typical commodity server: 100 W idle, 250 W at full load.
    pub fn commodity_server() -> Self {
        PowerModel::new(100.0, 250.0)
    }
}

/// Energy breakdown of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Idle-floor energy: every VM powered for the whole window.
    pub idle_joules: f64,
    /// Dynamic energy: proportional to per-VM busy time.
    pub dynamic_joules: f64,
    /// Mean VM utilization over the window, in `[0, 1]`.
    pub mean_utilization: f64,
}

impl EnergyReport {
    /// Total energy in joules.
    pub fn total_joules(&self) -> f64 {
        self.idle_joules + self.dynamic_joules
    }

    /// Total energy in watt-hours.
    pub fn total_wh(&self) -> f64 {
        self.total_joules() / 3_600.0
    }
}

/// Estimates the energy a run consumed under the linear model, treating
/// each VM as an independently powered unit (one VM per accounting slot;
/// consolidate externally if several VMs share a host).
///
/// The window is the run's busy span (Eq. 12); per-VM busy time is the sum
/// of execution times of the cloudlets it finished. Returns `None` when no
/// cloudlet finished (no meaningful window).
pub fn estimate_energy(
    outcome: &SimulationOutcome,
    vm_count: usize,
    model: &PowerModel,
) -> Option<EnergyReport> {
    let window_s = outcome.simulation_time_ms()? / 1_000.0;
    if window_s <= 0.0 || vm_count == 0 {
        return None;
    }
    // One fused pass (and the only data Aggregate mode retains per VM).
    let usage = outcome.per_vm_usage(vm_count);
    let mut idle_joules = 0.0;
    let mut dynamic_joules = 0.0;
    let mut util_sum = 0.0;
    for b in &usage.busy_ms {
        // A VM cannot be busier than the window; time-shared contention
        // can make the per-cloudlet sum exceed it, so clamp.
        let busy = (b / 1_000.0).min(window_s);
        idle_joules += model.idle_w * window_s;
        dynamic_joules += (model.peak_w - model.idle_w) * busy;
        util_sum += busy / window_s;
    }
    Some(EnergyReport {
        idle_joules,
        dynamic_joules,
        mean_utilization: util_sum / vm_count as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloudlet::CloudletStatus;
    use crate::ids::{CloudletId, VmId};
    use crate::stats::CloudletRecord;
    use crate::time::SimTime;

    fn outcome(records: Vec<CloudletRecord>) -> SimulationOutcome {
        SimulationOutcome {
            records,
            aggregate: None,
            end_time: SimTime::new(1_000.0),
            events_processed: 1,
            vms_created: 2,
            vms_rejected: 0,
            cloudlets_failed: 0,
            engine: crate::simulation::EngineKind::Sequential,
            fallback: None,
            resilience: crate::stats::ResilienceCounters::default(),
        }
    }

    fn rec(vm: u32, start: f64, finish: f64) -> CloudletRecord {
        CloudletRecord {
            id: CloudletId(0),
            vm: Some(VmId(vm)),
            submit: Some(SimTime::ZERO),
            start: Some(SimTime::new(start)),
            finish: Some(SimTime::new(finish)),
            execution_ms: Some(finish - start),
            cost: 0.0,
            status: CloudletStatus::Finished,
            met_deadline: None,
        }
    }

    #[test]
    fn power_is_linear_and_clamped() {
        let m = PowerModel::new(100.0, 300.0);
        assert_eq!(m.power(0.0), 100.0);
        assert_eq!(m.power(0.5), 200.0);
        assert_eq!(m.power(1.0), 300.0);
        assert_eq!(m.power(2.0), 300.0);
        assert_eq!(m.power(-1.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "idle")]
    fn peak_below_idle_rejected() {
        let _ = PowerModel::new(200.0, 100.0);
    }

    #[test]
    fn energy_accounting_matches_hand_math() {
        // Window: 1000ms (0..1000). VM0 busy 1000ms, VM1 busy 500ms.
        let o = outcome(vec![rec(0, 0.0, 1_000.0), rec(1, 0.0, 500.0)]);
        let m = PowerModel::new(100.0, 200.0);
        let e = estimate_energy(&o, 2, &m).unwrap();
        // Idle: 2 VMs × 100W × 1s = 200 J.
        assert!((e.idle_joules - 200.0).abs() < 1e-9);
        // Dynamic: 100W × (1.0 + 0.5)s = 150 J.
        assert!((e.dynamic_joules - 150.0).abs() < 1e-9);
        assert!((e.total_joules() - 350.0).abs() < 1e-9);
        assert!((e.mean_utilization - 0.75).abs() < 1e-9);
        assert!((e.total_wh() - 350.0 / 3_600.0).abs() < 1e-12);
    }

    #[test]
    fn busier_schedule_costs_more_dynamic_energy() {
        let light = outcome(vec![rec(0, 0.0, 200.0)]);
        let heavy = outcome(vec![rec(0, 0.0, 200.0), rec(1, 0.0, 200.0)]);
        let m = PowerModel::commodity_server();
        let el = estimate_energy(&light, 2, &m).unwrap();
        let eh = estimate_energy(&heavy, 2, &m).unwrap();
        assert!(eh.dynamic_joules > el.dynamic_joules);
        assert_eq!(el.idle_joules, eh.idle_joules, "same window, same floor");
    }

    #[test]
    fn contended_busy_time_is_clamped_to_window() {
        // Two cloudlets, each "executing" the whole window on the same VM
        // (time-shared overlap): busy must clamp at the window.
        let o = outcome(vec![rec(0, 0.0, 1_000.0), rec(0, 0.0, 1_000.0)]);
        let m = PowerModel::new(0.0, 100.0);
        let e = estimate_energy(&o, 1, &m).unwrap();
        assert!((e.dynamic_joules - 100.0).abs() < 1e-9, "clamped at 1s");
        assert!((e.mean_utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_outcome_has_no_energy() {
        let o = outcome(vec![]);
        assert!(estimate_energy(&o, 2, &PowerModel::commodity_server()).is_none());
    }
}
