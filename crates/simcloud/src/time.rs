//! Simulation time.
//!
//! `simcloud` measures time in *simulated milliseconds* stored as `f64`.
//! [`SimTime`] is a thin newtype that adds a total order (rejecting NaN at
//! construction) so times can live in ordered collections such as the
//! kernel's event queue.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) in simulated time, in milliseconds.
///
/// Construction via [`SimTime::new`] panics on NaN, which lets the type
/// implement `Ord` soundly. Negative times are permitted as spans but the
/// kernel never schedules an event before the current clock.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from milliseconds. Panics if `ms` is NaN.
    #[inline]
    pub fn new(ms: f64) -> Self {
        assert!(!ms.is_nan(), "SimTime cannot be NaN");
        SimTime(ms)
    }

    /// Creates a time from whole milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms as f64)
    }

    /// Creates a time from seconds.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        Self::new(secs * 1_000.0)
    }

    /// The raw value in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0
    }

    /// The value converted to seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Saturating subtraction: never goes below zero.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime((self.0 - rhs.0).max(0.0))
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// True if this time is non-negative and finite.
    #[inline]
    pub fn is_valid_clock(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Sound because construction rejects NaN.
        self.partial_cmp(other).expect("SimTime is never NaN")
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime::new(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
        assert!(!self.0.is_nan(), "SimTime cannot be NaN");
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::new(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl From<f64> for SimTime {
    fn from(ms: f64) -> Self {
        SimTime::new(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::new(5.0);
        let b = SimTime::new(3.0);
        assert_eq!((a + b).as_millis(), 8.0);
        assert_eq!((a - b).as_millis(), 2.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_millis(), 8.0);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(1.5).as_millis(), 1_500.0);
        assert_eq!(SimTime::from_millis(250).as_secs(), 0.25);
        assert!(SimTime::ZERO.is_valid_clock());
        assert!(!SimTime::new(-1.0).is_valid_clock());
        assert!(!SimTime::new(f64::INFINITY).is_valid_clock());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::new(12.3456)), "12.346");
        assert_eq!(format!("{:?}", SimTime::new(1.0)), "1.000ms");
    }
}
