//! High-level simulation façade.
//!
//! Wires a broker, datacenters, VMs and cloudlets into a kernel, runs it to
//! completion and returns a [`SimulationOutcome`]. This is the API the
//! benchmark harness and the examples use:
//!
//! ```
//! use simcloud::prelude::*;
//!
//! let vms = vec![VmSpec::homogeneous_default(); 4];
//! let cloudlets = vec![CloudletSpec::homogeneous_default(); 16];
//! // Bind cloudlets to VMs cyclically (the paper's Base Test).
//! let assignment: Vec<VmId> =
//!     (0..16).map(|i| VmId::from_index(i % 4)).collect();
//!
//! let outcome = SimulationBuilder::new()
//!     .datacenter(DatacenterBlueprint::sized_for(
//!         &VmSpec::homogeneous_default(),
//!         4,
//!         2,
//!         DatacenterCharacteristics::default(),
//!     ))
//!     .vms(vms)
//!     .cloudlets(cloudlets)
//!     .assignment(assignment)
//!     .run()
//!     .expect("valid scenario");
//! assert_eq!(outcome.finished_count(), 16);
//! ```

use crate::broker::{Broker, RecoveryPolicy, Rescheduler};
use crate::cloudlet::CloudletSpec;
use crate::datacenter::{Datacenter, DatacenterBlueprint};
use crate::error::SimError;
use crate::faults::FaultPlan;
use crate::ids::{DatacenterId, HostId, VmId};
use crate::kernel::{Kernel, World};
use crate::network::Topology;
use crate::stats::{AggregateMetrics, CloudletRecord, RecordMode, SimulationOutcome};
use crate::time::SimTime;
use crate::vm::VmSpec;

/// Which execution engine runs the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The reference discrete-event kernel: one global event queue.
    #[default]
    Sequential,
    /// The sharded engine: per-VM timelines replayed across rayon
    /// workers, trace-equivalent to the sequential kernel. Plain batch
    /// scenarios run free (no synchronisation at all); fault injection,
    /// recovery and resubmission run on the epoch-sharded driver, which
    /// interleaves sequential control instants with parallel bulk
    /// replay; workflow DAGs run on the dependency-aware epoch driver,
    /// which bounds replay by a release barrier and resolves same-VM
    /// releases inside the parallel lanes. Every workload shape is
    /// expressible — no scenario falls back to [`Self::Sequential`].
    Sharded,
}

/// An explicit record that a run executed on a different engine than the
/// one requested. Carried on [`SimulationOutcome::fallback`] so callers
/// (and the CLI, which prints a one-line note) always learn what ran.
/// Since the dependency-aware epoch driver landed, no scenario produces
/// one — the type remains so experiment outputs can record
/// requested/ran/reason uniformly and future exclusions stay loud.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineFallback {
    /// The engine the builder was asked for.
    pub requested: EngineKind,
    /// The engine that actually executed the scenario.
    pub ran: EngineKind,
    /// Why the substitution happened.
    pub reason: &'static str,
}

impl EngineKind {
    /// Engine name for reports and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Sequential => "sequential",
            EngineKind::Sharded => "sharded",
        }
    }
}

/// Builder for a full simulation run.
pub struct SimulationBuilder {
    datacenters: Vec<DatacenterBlueprint>,
    vms: Vec<VmSpec>,
    cloudlets: Vec<CloudletSpec>,
    vm_placement: Option<Vec<DatacenterId>>,
    assignment: Vec<VmId>,
    arrivals: Option<Vec<crate::time::SimTime>>,
    dependencies: Option<Vec<Vec<crate::ids::CloudletId>>>,
    topology: Option<Topology>,
    max_events: Option<u64>,
    max_retries: u8,
    engine: EngineKind,
    record_mode: RecordMode,
    faults: Option<FaultPlan>,
    recovery: Option<RecoveryPolicy>,
    rescheduler: Option<Box<dyn Rescheduler>>,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimulationBuilder {
    /// Starts an empty scenario.
    pub fn new() -> Self {
        SimulationBuilder {
            datacenters: Vec::new(),
            vms: Vec::new(),
            cloudlets: Vec::new(),
            vm_placement: None,
            assignment: Vec::new(),
            arrivals: None,
            dependencies: None,
            topology: None,
            max_events: None,
            max_retries: 0,
            engine: EngineKind::Sequential,
            record_mode: RecordMode::Full,
            faults: None,
            recovery: None,
            rescheduler: None,
        }
    }

    /// Installs a seeded chaos timeline ([`FaultPlan`]): host
    /// fail/repair windows and VM straggler intervals, compiled into the
    /// event queue before the run starts. An empty plan leaves the run
    /// byte-identical to one with no plan at all.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enables broker-level batched retry/backoff recovery: failed
    /// cloudlets are collected into retry batches, backed off
    /// exponentially (capped), and resubmitted onto surviving VMs.
    /// Mutually exclusive with [`SimulationBuilder::resubmit_failures`].
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Installs a fault-aware [`Rescheduler`] consulted for each retry
    /// batch. Without one, retries rebind cyclically over survivors.
    /// Only meaningful together with [`SimulationBuilder::recovery`].
    pub fn rescheduler(mut self, rescheduler: Box<dyn Rescheduler>) -> Self {
        self.rescheduler = Some(rescheduler);
        self
    }

    /// Selects the execution engine. Defaults to the sequential kernel.
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Selects how per-cloudlet results are retained. Defaults to
    /// [`RecordMode::Full`]; [`RecordMode::Aggregate`] folds the metrics
    /// at outcome construction and returns an empty record vector,
    /// keeping memory O(VMs) instead of O(cloudlets).
    pub fn record_mode(mut self, mode: RecordMode) -> Self {
        self.record_mode = mode;
        self
    }

    /// Adds a datacenter.
    pub fn datacenter(mut self, blueprint: DatacenterBlueprint) -> Self {
        self.datacenters.push(blueprint);
        self
    }

    /// Sets the VM fleet.
    pub fn vms(mut self, vms: Vec<VmSpec>) -> Self {
        self.vms = vms;
        self
    }

    /// Sets the cloudlet workload.
    pub fn cloudlets(mut self, cloudlets: Vec<CloudletSpec>) -> Self {
        self.cloudlets = cloudlets;
        self
    }

    /// Explicitly places each VM in a datacenter. Defaults to spreading
    /// VMs across datacenters cyclically.
    pub fn vm_placement(mut self, placement: Vec<DatacenterId>) -> Self {
        self.vm_placement = Some(placement);
        self
    }

    /// Sets the cloudlet→VM assignment (a scheduler's output).
    pub fn assignment(mut self, assignment: Vec<VmId>) -> Self {
        self.assignment = assignment;
        self
    }

    /// Staggers cloudlet arrivals (absolute times from t=0). Defaults to
    /// batch submission — everything arrives as soon as the fleet is up.
    pub fn arrivals(mut self, arrivals: Vec<crate::time::SimTime>) -> Self {
        self.arrivals = Some(arrivals);
        self
    }

    /// Declares workflow precedence: `parents[c]` lists the cloudlets
    /// that must finish before cloudlet `c` is submitted. The graph must
    /// be acyclic; `run` validates this.
    pub fn dependencies(mut self, parents: Vec<Vec<crate::ids::CloudletId>>) -> Self {
        self.dependencies = Some(parents);
        self
    }

    /// Sets the network topology. Defaults to zero-latency.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Enables fault tolerance: cloudlets whose VM dies are rebound to a
    /// surviving VM up to `max_retries` times.
    pub fn resubmit_failures(mut self, max_retries: u8) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Overrides the kernel's runaway-event guard.
    pub fn max_events(mut self, max: u64) -> Self {
        self.max_events = Some(max);
        self
    }

    /// Validates the scenario, runs it to completion and collects metrics.
    pub fn run(self) -> Result<SimulationOutcome, SimError> {
        if self.datacenters.is_empty() {
            return Err(SimError::NoDatacenters);
        }
        if self.vms.is_empty() {
            return Err(SimError::NoVms);
        }
        let dc_count = self.datacenters.len();
        let vm_placement = match self.vm_placement {
            Some(p) => {
                if p.len() != self.vms.len() {
                    return Err(SimError::PlacementMismatch {
                        vms: self.vms.len(),
                        placements: p.len(),
                    });
                }
                if let Some(bad) = p.iter().find(|d| d.index() >= dc_count) {
                    return Err(SimError::UnknownDatacenter(*bad));
                }
                p
            }
            None => (0..self.vms.len())
                .map(|i| DatacenterId::from_index(i % dc_count))
                .collect(),
        };
        if self.assignment.len() != self.cloudlets.len() {
            return Err(SimError::AssignmentMismatch {
                cloudlets: self.cloudlets.len(),
                assignments: self.assignment.len(),
            });
        }
        if let Some(bad) = self.assignment.iter().find(|v| v.index() >= self.vms.len()) {
            return Err(SimError::UnknownVm(*bad));
        }
        if let Some(parents) = &self.dependencies {
            validate_dag(parents, self.cloudlets.len())
                .map_err(|what| SimError::InvalidDependencies { what })?;
        }
        if let Some(arrivals) = &self.arrivals {
            if arrivals.len() != self.cloudlets.len() {
                return Err(SimError::AssignmentMismatch {
                    cloudlets: self.cloudlets.len(),
                    assignments: arrivals.len(),
                });
            }
            if let Some(bad) = arrivals.iter().find(|t| !t.is_valid_clock()) {
                return Err(SimError::InvalidSpec {
                    what: format!("arrival time {bad:?} is not a valid clock value"),
                });
            }
        }
        for (i, vm) in self.vms.iter().enumerate() {
            vm.validate().map_err(|e| SimError::InvalidSpec {
                what: format!("vm {i}: {e}"),
            })?;
        }
        for (i, cl) in self.cloudlets.iter().enumerate() {
            cl.validate().map_err(|e| SimError::InvalidSpec {
                what: format!("cloudlet {i}: {e}"),
            })?;
        }
        if let Some(plan) = &self.faults {
            let hosts_per_dc: Vec<usize> = self.datacenters.iter().map(|d| d.hosts.len()).collect();
            plan.validate(&hosts_per_dc, self.vms.len())
                .map_err(|what| SimError::InvalidSpec {
                    what: format!("fault plan: {what}"),
                })?;
        }
        if let Some(policy) = &self.recovery {
            policy.validate().map_err(|what| SimError::InvalidSpec {
                what: format!("recovery policy: {what}"),
            })?;
            if self.max_retries > 0 {
                return Err(SimError::InvalidSpec {
                    what: "recovery and resubmit_failures are mutually exclusive".into(),
                });
            }
        }

        let topology = self.topology.unwrap_or_else(|| Topology::flat(dc_count));

        // Compile the fault plan into per-datacenter schedules: failures
        // ride the blueprint's existing injection list, repairs and
        // straggler intervals are armed via `Datacenter::arm_faults`. A
        // slowdown with an end compiles to two `VmDegrade` events (onset
        // factor, then 1.0 to restore).
        let mut dc_failures: Vec<Vec<(HostId, SimTime)>> = vec![Vec::new(); dc_count];
        let mut dc_repairs: Vec<Vec<(HostId, SimTime)>> = vec![Vec::new(); dc_count];
        let mut dc_degrades: Vec<Vec<(VmId, SimTime, f64)>> = vec![Vec::new(); dc_count];
        if let Some(plan) = &self.faults {
            for o in &plan.host_outages {
                dc_failures[o.datacenter.index()].push((o.host, o.fail_at));
                if let Some(r) = o.repair_at {
                    dc_repairs[o.datacenter.index()].push((o.host, r));
                }
            }
            for s in &plan.vm_slowdowns {
                let dc = vm_placement[s.vm.index()].index();
                dc_degrades[dc].push((s.vm, s.from, s.factor));
                if let Some(u) = s.until {
                    dc_degrades[dc].push((s.vm, u, 1.0));
                }
            }
        }

        // Engine routing. Three sharded paths plus the kernel:
        //   1. Plain batch on the sharded engine → free-running replay
        //      (no synchronisation; the paper's dominant shape).
        //   2. Fault-injected / recovering / resubmitting, no DAG →
        //      epoch-sharded replay over the real entities.
        //   3. Workflow DAGs (with or without fault shaping) →
        //      dependency-aware epochs with a release barrier.
        //   4. `EngineKind::Sequential` → the kernel. No scenario falls
        //      back anymore; `EngineFallback` is never produced.
        let fault_shaped = self.datacenters.iter().any(|d| !d.failures.is_empty())
            || dc_failures.iter().any(|f| !f.is_empty())
            || dc_repairs.iter().any(|r| !r.is_empty())
            || dc_degrades.iter().any(|d| !d.is_empty())
            || self.recovery.is_some()
            || self.max_retries > 0;
        if self.engine == EngineKind::Sharded && self.dependencies.is_none() && !fault_shaped {
            let mut world = World::new(self.vms, self.cloudlets);
            let stats = crate::sharded::run(
                &mut world,
                self.datacenters,
                &vm_placement,
                &self.assignment,
                self.arrivals.as_deref(),
                &topology,
            );
            return Ok(outcome_from_world(
                &world,
                stats,
                EngineKind::Sharded,
                self.record_mode,
                None,
            ));
        }
        let epoch_sharded = self.engine == EngineKind::Sharded;
        // The dependency table is compiled before the broker consumes the
        // assignment, arrival and topology vectors.
        let dag_plan = (epoch_sharded && self.dependencies.is_some()).then(|| {
            crate::sharded::DagPlan::compile(
                self.dependencies.as_deref().expect("checked above"),
                &self.assignment,
                self.vms.len(),
                fault_shaped,
                self.arrivals.clone(),
                topology.clone(),
            )
        });

        let mut world = World::new(self.vms, self.cloudlets);

        // Both remaining paths drive the same entities, built with dense
        // ids (datacenters first, broker last) — exactly the ids
        // `Kernel::register` would hand out in this order.
        let mut dcs = Vec::with_capacity(dc_count);
        let mut dc_entities = Vec::with_capacity(dc_count);
        for (i, mut blueprint) in self.datacenters.into_iter().enumerate() {
            blueprint.failures.append(&mut dc_failures[i]);
            let entity = crate::ids::EntityId::from_index(i);
            let mut dc = Datacenter::new(entity, DatacenterId::from_index(i), blueprint);
            dc.arm_faults(
                std::mem::take(&mut dc_repairs[i]),
                std::mem::take(&mut dc_degrades[i]),
            );
            dc_entities.push(entity);
            dcs.push(dc);
        }
        let broker_id = crate::ids::EntityId::from_index(dc_count);
        let mut broker = Broker::new(
            broker_id,
            dc_entities,
            vm_placement,
            self.assignment,
            topology,
        );
        if let Some(arrivals) = self.arrivals {
            broker = broker.with_arrivals(arrivals);
        }
        if let Some(parents) = self.dependencies {
            broker = broker.with_dependencies(parents);
        }
        if self.max_retries > 0 {
            broker = broker.with_resubmission(self.max_retries);
        }
        if let Some(policy) = self.recovery {
            broker = broker.with_recovery(policy, self.rescheduler);
        }

        let stats = if epoch_sharded {
            let max_events = self.max_events.unwrap_or(Kernel::DEFAULT_MAX_EVENTS);
            match dag_plan {
                Some(plan) => crate::sharded::run_epochs_dag(
                    &mut world,
                    &mut dcs,
                    &mut broker,
                    max_events,
                    plan,
                ),
                None => crate::sharded::run_epochs(&mut world, &mut dcs, &mut broker, max_events),
            }
        } else {
            let mut kernel = Kernel::new();
            if let Some(max) = self.max_events {
                kernel = kernel.with_max_events(max);
            }
            for dc in dcs {
                kernel.register(Box::new(dc));
            }
            kernel.register(Box::new(broker));
            kernel.run(&mut world)
        };
        if !stats.drained {
            return Err(SimError::EventLimitExceeded {
                processed: stats.events_processed,
            });
        }

        let engine = if epoch_sharded {
            EngineKind::Sharded
        } else {
            EngineKind::Sequential
        };
        Ok(outcome_from_world(
            &world,
            stats,
            engine,
            self.record_mode,
            None,
        ))
    }
}

/// Collects run-level counters and per-cloudlet records from the world.
///
/// The kernel owns the entities; rather than downcasting the broker we
/// recompute the counters from the world, which is equivalent and keeps
/// the kernel API minimal. The sharded engine shares this path, which
/// guarantees both engines derive their outcome identically. Under
/// [`RecordMode::Aggregate`] the per-cloudlet records are folded into an
/// [`AggregateMetrics`] in cloudlet-id order (the exact order the record
/// accessors scan) and never materialized as a vector.
fn outcome_from_world(
    world: &World,
    stats: crate::kernel::RunStats,
    engine: EngineKind,
    mode: RecordMode,
    fallback: Option<EngineFallback>,
) -> SimulationOutcome {
    let vms_created = world.vms.iter().filter(|v| v.is_active()).count();
    let vms_rejected = world
        .vms
        .iter()
        .filter(|v| v.status == crate::vm::VmStatus::Rejected)
        .count();
    let cloudlets_failed = world
        .cloudlets
        .iter()
        .filter(|c| c.status == crate::cloudlet::CloudletStatus::Failed)
        .count();
    let (records, aggregate) = match mode {
        RecordMode::Full => (
            world
                .cloudlets
                .iter()
                .map(CloudletRecord::from)
                .collect::<Vec<_>>(),
            None,
        ),
        RecordMode::Aggregate => {
            let mut agg = AggregateMetrics::new(world.vms.len());
            for cl in &world.cloudlets {
                agg.observe(&CloudletRecord::from(cl));
            }
            (Vec::new(), Some(agg))
        }
    };
    SimulationOutcome {
        records,
        aggregate,
        end_time: stats.end_time,
        events_processed: stats.events_processed,
        vms_created,
        vms_rejected,
        cloudlets_failed,
        resilience: world.resilience,
        engine,
        fallback,
    }
}

/// Checks a parents-list DAG: every reference in range, no cycles
/// (Kahn's algorithm), correct length.
fn validate_dag(parents: &[Vec<crate::ids::CloudletId>], cloudlets: usize) -> Result<(), String> {
    if parents.len() != cloudlets {
        return Err(format!(
            "dependency list covers {} cloudlets, expected {cloudlets}",
            parents.len()
        ));
    }
    let mut indegree = vec![0usize; cloudlets];
    let mut children = vec![Vec::new(); cloudlets];
    for (c, ps) in parents.iter().enumerate() {
        for p in ps {
            if p.index() >= cloudlets {
                return Err(format!("cloudlet {c} depends on unknown cloudlet {p}"));
            }
            if p.index() == c {
                return Err(format!("cloudlet {c} depends on itself"));
            }
            indegree[c] += 1;
            children[p.index()].push(c);
        }
    }
    let mut ready: Vec<usize> = (0..cloudlets).filter(|c| indegree[*c] == 0).collect();
    let mut visited = 0usize;
    while let Some(c) = ready.pop() {
        visited += 1;
        for &child in &children[c] {
            indegree[child] -= 1;
            if indegree[child] == 0 {
                ready.push(child);
            }
        }
    }
    if visited != cloudlets {
        return Err(format!(
            "dependency graph has a cycle ({} of {cloudlets} cloudlets reachable)",
            visited
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characteristics::DatacenterCharacteristics;

    fn base_assignment(cloudlets: usize, vms: usize) -> Vec<VmId> {
        (0..cloudlets).map(|i| VmId::from_index(i % vms)).collect()
    }

    fn quick_run(vms: usize, cloudlets: usize) -> SimulationOutcome {
        let vm = VmSpec::homogeneous_default();
        SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                vms,
                4,
                DatacenterCharacteristics::default(),
            ))
            .vms(vec![vm; vms])
            .cloudlets(vec![CloudletSpec::homogeneous_default(); cloudlets])
            .assignment(base_assignment(cloudlets, vms))
            .run()
            .expect("valid scenario")
    }

    #[test]
    fn all_cloudlets_finish() {
        let outcome = quick_run(4, 20);
        assert_eq!(outcome.finished_count(), 20);
        assert_eq!(outcome.vms_created, 4);
        assert_eq!(outcome.vms_rejected, 0);
        assert_eq!(outcome.cloudlets_failed, 0);
        assert!(outcome.simulation_time_ms().unwrap() > 0.0);
    }

    #[test]
    fn homogeneous_cyclic_assignment_is_balanced() {
        let outcome = quick_run(4, 40);
        let counts = outcome.per_vm_counts(4);
        assert_eq!(counts, vec![10, 10, 10, 10]);
        // Identical tasks on identical VMs: near-zero imbalance.
        assert!(outcome.time_imbalance().unwrap() < 1e-9);
    }

    #[test]
    fn execution_time_matches_analytic_model() {
        // One VM, one cloudlet: exec = length/mips seconds.
        let vm = VmSpec::homogeneous_default(); // 1000 MIPS
        let cl = CloudletSpec::new(250.0, 300.0, 300.0, 1); // 0.25s
        let outcome = SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                1,
                1,
                DatacenterCharacteristics::default(),
            ))
            .vms(vec![vm])
            .cloudlets(vec![cl])
            .assignment(vec![VmId(0)])
            .run()
            .unwrap();
        let exec = outcome.records[0].execution_ms.unwrap();
        assert!((exec - 250.0).abs() < 1e-6, "expected 250ms, got {exec}");
    }

    #[test]
    fn queued_cloudlets_serialize_on_one_vm() {
        let vm = VmSpec::homogeneous_default();
        let outcome = SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                1,
                1,
                DatacenterCharacteristics::default(),
            ))
            .vms(vec![vm])
            .cloudlets(vec![CloudletSpec::homogeneous_default(); 3])
            .assignment(vec![VmId(0); 3])
            .run()
            .unwrap();
        // Three 250ms tasks back-to-back: makespan 750ms.
        let sim = outcome.simulation_time_ms().unwrap();
        assert!((sim - 750.0).abs() < 1e-6, "expected 750ms, got {sim}");
    }

    #[test]
    fn rejected_vms_fail_their_cloudlets() {
        let vm = VmSpec::homogeneous_default();
        // Datacenter sized for a single VM, but two requested.
        let outcome = SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                1,
                1,
                DatacenterCharacteristics::default(),
            ))
            .vms(vec![vm.clone(), vm])
            .cloudlets(vec![CloudletSpec::homogeneous_default(); 4])
            .assignment(vec![VmId(0), VmId(1), VmId(0), VmId(1)])
            .run()
            .unwrap();
        assert_eq!(outcome.vms_created, 1);
        assert_eq!(outcome.vms_rejected, 1);
        assert_eq!(outcome.cloudlets_failed, 2);
        assert_eq!(outcome.finished_count(), 2);
    }

    #[test]
    fn validation_errors() {
        let vm = VmSpec::homogeneous_default();
        assert!(matches!(
            SimulationBuilder::new().run(),
            Err(SimError::NoDatacenters)
        ));
        assert!(matches!(
            SimulationBuilder::new()
                .datacenter(DatacenterBlueprint::sized_for(
                    &vm,
                    1,
                    1,
                    DatacenterCharacteristics::default()
                ))
                .run(),
            Err(SimError::NoVms)
        ));
        // Assignment to a VM that does not exist.
        let err = SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                1,
                1,
                DatacenterCharacteristics::default(),
            ))
            .vms(vec![vm])
            .cloudlets(vec![CloudletSpec::homogeneous_default()])
            .assignment(vec![VmId(9)])
            .run();
        assert!(matches!(err, Err(SimError::UnknownVm(_))));
    }

    #[test]
    fn staggered_arrivals_delay_submission() {
        let vm = VmSpec::new(1_000.0, 100.0, 128.0, 500.0, 1);
        let cl = CloudletSpec::new(1_000.0, 0.0, 0.0, 1);
        let outcome = SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                2,
                1,
                DatacenterCharacteristics::default(),
            ))
            .vms(vec![vm; 2])
            .cloudlets(vec![cl; 2])
            .assignment(vec![VmId(0), VmId(1)])
            .arrivals(vec![
                crate::time::SimTime::ZERO,
                crate::time::SimTime::new(5_000.0),
            ])
            .run()
            .unwrap();
        let first = &outcome.records[0];
        let second = &outcome.records[1];
        assert!((first.start.unwrap().as_millis()).abs() < 1e-9);
        assert!((second.start.unwrap().as_millis() - 5_000.0).abs() < 1e-9);
        assert_eq!(second.submit.unwrap(), crate::time::SimTime::new(5_000.0));
        // Makespan spans from the first start to the last finish.
        assert!((outcome.simulation_time_ms().unwrap() - 6_000.0).abs() < 1e-9);
    }

    #[test]
    fn arrivals_length_mismatch_rejected() {
        let vm = VmSpec::homogeneous_default();
        let err = SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                1,
                1,
                DatacenterCharacteristics::default(),
            ))
            .vms(vec![vm])
            .cloudlets(vec![CloudletSpec::homogeneous_default(); 2])
            .assignment(vec![VmId(0); 2])
            .arrivals(vec![crate::time::SimTime::ZERO])
            .run();
        assert!(matches!(err, Err(SimError::AssignmentMismatch { .. })));
    }

    #[test]
    fn host_failure_kills_resident_work() {
        use crate::ids::HostId;
        use crate::time::SimTime;
        let vm = VmSpec::new(1_000.0, 100.0, 128.0, 500.0, 1);
        // Two hosts, one VM each; host 0 dies mid-run.
        let blueprint =
            DatacenterBlueprint::sized_for(&vm, 2, 1, DatacenterCharacteristics::default())
                .with_failure(HostId(0), SimTime::new(500.0));
        let long = CloudletSpec::new(2_000.0, 0.0, 0.0, 1); // 2s solo
        let outcome = SimulationBuilder::new()
            .datacenter(blueprint)
            .vms(vec![vm; 2])
            .cloudlets(vec![long; 4])
            .assignment(vec![VmId(0), VmId(1), VmId(0), VmId(1)])
            .run()
            .unwrap();
        // VM0's two cloudlets die with the host; VM1's two finish.
        assert_eq!(outcome.finished_count(), 2);
        assert_eq!(outcome.cloudlets_failed, 2);
        for r in &outcome.records {
            match r.vm {
                Some(VmId(0)) => assert_eq!(r.status, crate::cloudlet::CloudletStatus::Failed),
                Some(VmId(1)) => assert_eq!(r.status, crate::cloudlet::CloudletStatus::Finished),
                other => panic!("unexpected vm {other:?}"),
            }
        }
    }

    #[test]
    fn resubmission_recovers_from_host_failure() {
        use crate::ids::HostId;
        use crate::time::SimTime;
        let vm = VmSpec::new(1_000.0, 100.0, 128.0, 500.0, 1);
        // Host 0 dies at t=500 while VM0 runs its queue; with resubmission
        // the orphans move to VM1 and everything still finishes.
        let blueprint =
            DatacenterBlueprint::sized_for(&vm, 2, 1, DatacenterCharacteristics::default())
                .with_failure(HostId(0), SimTime::new(500.0));
        let outcome = SimulationBuilder::new()
            .datacenter(blueprint)
            .vms(vec![vm; 2])
            .cloudlets(vec![CloudletSpec::new(2_000.0, 0.0, 0.0, 1); 4])
            .assignment(vec![VmId(0), VmId(1), VmId(0), VmId(1)])
            .resubmit_failures(3)
            .run()
            .unwrap();
        assert_eq!(outcome.finished_count(), 4, "resubmission saves the work");
        assert_eq!(outcome.cloudlets_failed, 0);
        // Anything finishing after the failure must be on the survivor.
        for r in &outcome.records {
            if r.finish.unwrap() > SimTime::new(500.0) {
                assert_eq!(r.vm, Some(VmId(1)), "rescued work runs on VM1");
            }
        }
    }

    #[test]
    fn resubmission_gives_up_when_no_vm_survives() {
        use crate::ids::HostId;
        use crate::time::SimTime;
        let vm = VmSpec::new(1_000.0, 100.0, 128.0, 500.0, 1);
        let blueprint =
            DatacenterBlueprint::sized_for(&vm, 1, 1, DatacenterCharacteristics::default())
                .with_failure(HostId(0), SimTime::new(100.0));
        let outcome = SimulationBuilder::new()
            .datacenter(blueprint)
            .vms(vec![vm])
            .cloudlets(vec![CloudletSpec::new(5_000.0, 0.0, 0.0, 1); 2])
            .assignment(vec![VmId(0); 2])
            .resubmit_failures(5)
            .run()
            .unwrap();
        assert_eq!(outcome.finished_count(), 0);
        assert_eq!(outcome.cloudlets_failed, 2);
    }

    #[test]
    fn failure_before_submission_fails_cloudlets_cleanly() {
        use crate::ids::HostId;
        use crate::time::SimTime;
        let vm = VmSpec::new(1_000.0, 100.0, 128.0, 500.0, 1);
        // Host dies at t=100; the cloudlet arrives at t=500, after its VM
        // is gone — it must fail, not crash the kernel.
        let blueprint =
            DatacenterBlueprint::sized_for(&vm, 1, 1, DatacenterCharacteristics::default())
                .with_failure(HostId(0), SimTime::new(100.0));
        let outcome = SimulationBuilder::new()
            .datacenter(blueprint)
            .vms(vec![vm])
            .cloudlets(vec![CloudletSpec::new(1_000.0, 0.0, 0.0, 1)])
            .assignment(vec![VmId(0)])
            .arrivals(vec![SimTime::new(500.0)])
            .run()
            .unwrap();
        assert_eq!(outcome.finished_count(), 0);
        assert_eq!(outcome.cloudlets_failed, 1);
    }

    #[test]
    fn workflow_chain_serializes_across_vms() {
        use crate::ids::CloudletId;
        // Two VMs, three chained 1s tasks on alternating VMs: each child
        // starts only after its parent finishes, despite idle VMs.
        let vm = VmSpec::new(1_000.0, 100.0, 128.0, 500.0, 1);
        let cl = CloudletSpec::new(1_000.0, 0.0, 0.0, 1);
        let outcome = SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                2,
                1,
                DatacenterCharacteristics::default(),
            ))
            .vms(vec![vm; 2])
            .cloudlets(vec![cl; 3])
            .assignment(vec![VmId(0), VmId(1), VmId(0)])
            .dependencies(vec![vec![], vec![CloudletId(0)], vec![CloudletId(1)]])
            .run()
            .unwrap();
        assert_eq!(outcome.finished_count(), 3);
        let f = |i: usize| outcome.records[i].finish.unwrap().as_millis();
        let s = |i: usize| outcome.records[i].start.unwrap().as_millis();
        assert!(s(1) >= f(0));
        assert!(s(2) >= f(1));
        // Chain of three 1s tasks: at least 3s of simulated span.
        assert!(f(2) - s(0) >= 3_000.0 - 1e-6);
    }

    #[test]
    fn workflow_diamond_joins_on_slowest_parent() {
        use crate::ids::CloudletId;
        let vm = VmSpec::new(1_000.0, 100.0, 128.0, 500.0, 1);
        // c0 -> {c1 (1s), c2 (3s)} -> c3; all on distinct VMs.
        let cloudlets = vec![
            CloudletSpec::new(500.0, 0.0, 0.0, 1),
            CloudletSpec::new(1_000.0, 0.0, 0.0, 1),
            CloudletSpec::new(3_000.0, 0.0, 0.0, 1),
            CloudletSpec::new(500.0, 0.0, 0.0, 1),
        ];
        let outcome = SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                4,
                1,
                DatacenterCharacteristics::default(),
            ))
            .vms(vec![vm; 4])
            .cloudlets(cloudlets)
            .assignment((0..4).map(VmId::from_index).collect())
            .dependencies(vec![
                vec![],
                vec![CloudletId(0)],
                vec![CloudletId(0)],
                vec![CloudletId(1), CloudletId(2)],
            ])
            .run()
            .unwrap();
        assert_eq!(outcome.finished_count(), 4);
        let f = |i: usize| outcome.records[i].finish.unwrap().as_millis();
        let s = |i: usize| outcome.records[i].start.unwrap().as_millis();
        // Join waits for the slow branch, not the fast one.
        assert!(s(3) >= f(2));
        assert!(f(2) > f(1));
    }

    #[test]
    fn cyclic_dependencies_rejected() {
        use crate::ids::CloudletId;
        let vm = VmSpec::homogeneous_default();
        let err = SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                1,
                1,
                DatacenterCharacteristics::default(),
            ))
            .vms(vec![vm])
            .cloudlets(vec![CloudletSpec::homogeneous_default(); 2])
            .assignment(vec![VmId(0); 2])
            .dependencies(vec![vec![CloudletId(1)], vec![CloudletId(0)]])
            .run();
        assert!(matches!(err, Err(SimError::InvalidDependencies { .. })));
        // Self-loop.
        let vm = VmSpec::homogeneous_default();
        let err = SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                1,
                1,
                DatacenterCharacteristics::default(),
            ))
            .vms(vec![vm])
            .cloudlets(vec![CloudletSpec::homogeneous_default()])
            .assignment(vec![VmId(0)])
            .dependencies(vec![vec![CloudletId(0)]])
            .run();
        assert!(matches!(err, Err(SimError::InvalidDependencies { .. })));
    }

    #[test]
    fn failed_parent_cascades_to_descendants() {
        use crate::ids::{CloudletId, HostId};
        use crate::time::SimTime;
        let vm = VmSpec::new(1_000.0, 100.0, 128.0, 500.0, 1);
        // VM0's host dies while c0 runs; c1 (child, on healthy VM1) and
        // c2 (grandchild) must cascade to Failed; c3 is independent.
        let blueprint =
            DatacenterBlueprint::sized_for(&vm, 2, 1, DatacenterCharacteristics::default())
                .with_failure(HostId(0), SimTime::new(500.0));
        let outcome = SimulationBuilder::new()
            .datacenter(blueprint)
            .vms(vec![vm; 2])
            .cloudlets(vec![CloudletSpec::new(2_000.0, 0.0, 0.0, 1); 4])
            .assignment(vec![VmId(0), VmId(1), VmId(1), VmId(1)])
            .dependencies(vec![
                vec![],
                vec![CloudletId(0)],
                vec![CloudletId(1)],
                vec![],
            ])
            .run()
            .unwrap();
        use crate::cloudlet::CloudletStatus;
        assert_eq!(outcome.records[0].status, CloudletStatus::Failed);
        assert_eq!(outcome.records[1].status, CloudletStatus::Failed);
        assert_eq!(outcome.records[2].status, CloudletStatus::Failed);
        assert_eq!(outcome.records[3].status, CloudletStatus::Finished);
        assert_eq!(outcome.cloudlets_failed, 3);
    }

    #[test]
    fn sharded_runs_fault_injection_on_epoch_driver() {
        use crate::faults::{FaultPlan, HostOutage};
        use crate::ids::HostId;
        let vm = VmSpec::homogeneous_default();
        let base = || {
            SimulationBuilder::new()
                .engine(EngineKind::Sharded)
                .datacenter(DatacenterBlueprint::sized_for(
                    &vm,
                    2,
                    1,
                    DatacenterCharacteristics::default(),
                ))
                .vms(vec![vm.clone(); 2])
                .cloudlets(vec![CloudletSpec::homogeneous_default(); 4])
                .assignment(base_assignment(4, 2))
        };
        // Blueprint-level failure injection runs sharded, no fallback.
        let vm2 = VmSpec::homogeneous_default();
        let ok = SimulationBuilder::new()
            .engine(EngineKind::Sharded)
            .datacenter(
                DatacenterBlueprint::sized_for(&vm2, 2, 1, DatacenterCharacteristics::default())
                    .with_failure(HostId(0), SimTime::new(500.0)),
            )
            .vms(vec![vm2; 2])
            .cloudlets(vec![CloudletSpec::homogeneous_default(); 4])
            .assignment(base_assignment(4, 2))
            .run()
            .unwrap();
        assert_eq!(ok.engine, EngineKind::Sharded);
        assert_eq!(ok.fallback, None);
        // A non-empty fault plan: same.
        let mut plan = FaultPlan::healthy();
        plan.host_outages.push(HostOutage {
            datacenter: DatacenterId(0),
            host: HostId(0),
            fail_at: SimTime::new(500.0),
            repair_at: None,
        });
        let ok = base().faults(plan).run().unwrap();
        assert_eq!(ok.engine, EngineKind::Sharded);
        assert_eq!(ok.fallback, None);
        // Recovery alone also stays on the sharded engine.
        let ok = base()
            .recovery(crate::broker::RecoveryPolicy::default())
            .run()
            .unwrap();
        assert_eq!(ok.engine, EngineKind::Sharded);
        assert_eq!(ok.fallback, None);
        // An all-healthy plan injects nothing: the free-running path.
        let ok = base().faults(FaultPlan::healthy()).run().unwrap();
        assert_eq!(ok.engine, EngineKind::Sharded);
        assert_eq!(ok.fallback, None);
        assert_eq!(ok.finished_count(), 4);
        // A workflow DAG runs on the dependency-aware epoch driver — no
        // fallback anywhere anymore.
        let ok = base()
            .dependencies(vec![
                vec![],
                vec![crate::ids::CloudletId(0)],
                vec![],
                vec![],
            ])
            .run()
            .unwrap();
        assert_eq!(ok.engine, EngineKind::Sharded);
        assert_eq!(ok.fallback, None);
        assert_eq!(ok.finished_count(), 4);
    }

    #[test]
    fn healthy_fault_plan_is_byte_identical() {
        use crate::faults::FaultPlan;
        let run = |with_plan: bool| {
            let vm = VmSpec::homogeneous_default();
            let mut b = SimulationBuilder::new()
                .datacenter(DatacenterBlueprint::sized_for(
                    &vm,
                    4,
                    2,
                    DatacenterCharacteristics::default(),
                ))
                .vms(vec![vm; 4])
                .cloudlets(vec![CloudletSpec::homogeneous_default(); 24])
                .assignment(base_assignment(24, 4));
            if with_plan {
                b = b.faults(FaultPlan::healthy());
            }
            b.run().unwrap()
        };
        let plain = run(false);
        let healthy = run(true);
        assert_eq!(plain.events_processed, healthy.events_processed);
        assert_eq!(plain.resilience, healthy.resilience);
        for (a, b) in plain.records.iter().zip(&healthy.records) {
            assert_eq!(a.finish, b.finish);
            assert_eq!(
                a.execution_ms.map(f64::to_bits),
                b.execution_ms.map(f64::to_bits)
            );
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        }
    }

    #[test]
    fn vm_degrade_slows_and_recovers() {
        use crate::faults::{FaultPlan, VmSlowdown};
        let vm = VmSpec::new(1_000.0, 100.0, 128.0, 500.0, 1);
        let run = |until: Option<f64>| {
            let mut plan = FaultPlan::healthy();
            plan.vm_slowdowns.push(VmSlowdown {
                vm: VmId(0),
                from: SimTime::new(500.0),
                factor: 0.5,
                until: until.map(SimTime::new),
            });
            SimulationBuilder::new()
                .datacenter(DatacenterBlueprint::sized_for(
                    &vm,
                    1,
                    1,
                    DatacenterCharacteristics::default(),
                ))
                .vms(vec![vm.clone()])
                .cloudlets(vec![CloudletSpec::new(2_000.0, 0.0, 0.0, 1)])
                .assignment(vec![VmId(0)])
                .faults(plan)
                .run()
                .unwrap()
        };
        // Permanent straggler: 500 MI at full speed, 1500 MI at half
        // speed -> 500 + 3000 = 3500 ms.
        let o = run(None);
        let finish = o.records[0].finish.unwrap().as_millis();
        assert!(
            (finish - 3_500.0).abs() < 1e-6,
            "expected 3500, got {finish}"
        );
        // Recovering straggler: degraded for [500, 1500) executes 500 MI,
        // the remaining 1000 MI run at full speed -> finish at 2500 ms.
        let o = run(Some(1_500.0));
        let finish = o.records[0].finish.unwrap().as_millis();
        assert!(
            (finish - 2_500.0).abs() < 1e-6,
            "expected 2500, got {finish}"
        );
        assert_eq!(o.finished_count(), 1);
    }

    #[test]
    fn host_repair_revives_capacity_for_retries() {
        use crate::broker::RecoveryPolicy;
        use crate::faults::{FaultPlan, HostOutage};
        use crate::ids::HostId;
        let vm = VmSpec::new(1_000.0, 100.0, 128.0, 500.0, 1);
        let mut plan = FaultPlan::healthy();
        plan.host_outages.push(HostOutage {
            datacenter: DatacenterId(0),
            host: HostId(0),
            fail_at: SimTime::new(500.0),
            repair_at: Some(SimTime::new(1_000.0)),
        });
        let outcome = SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                1,
                1,
                DatacenterCharacteristics::default(),
            ))
            .vms(vec![vm])
            .cloudlets(vec![CloudletSpec::new(2_000.0, 0.0, 0.0, 1)])
            .assignment(vec![VmId(0)])
            .faults(plan)
            .recovery(RecoveryPolicy {
                max_attempts: 3,
                base_backoff_ms: 600.0,
                backoff_factor: 2.0,
                max_backoff_ms: 5_000.0,
            })
            .run()
            .unwrap();
        // The single VM dies at 500 and is revived at 1000; the retry
        // wakes at 500 + 600 = 1100 and lands on the repaired host.
        assert_eq!(outcome.finished_count(), 1, "repair saves the work");
        assert_eq!(outcome.cloudlets_failed, 0);
        let r = &outcome.records[0];
        assert!((r.start.unwrap().as_millis() - 1_100.0).abs() < 1e-6);
        assert!((r.finish.unwrap().as_millis() - 3_100.0).abs() < 1e-6);
        assert_eq!(outcome.resilience.retries, 1);
        assert!((outcome.resilience.wasted_work_ms - 500.0).abs() < 1e-6);
        assert_eq!(outcome.resilience.recovered, 1);
        assert!((outcome.mean_time_to_recovery_ms().unwrap() - 2_600.0).abs() < 1e-6);
        assert_eq!(outcome.completion_ratio(), Some(1.0));
        let g = outcome.goodput().unwrap();
        assert!((g - 2_000.0 / 2_500.0).abs() < 1e-12, "goodput {g}");
    }

    #[test]
    fn recovery_reschedules_onto_survivors() {
        use crate::broker::RecoveryPolicy;
        use crate::faults::{FaultPlan, HostOutage};
        use crate::ids::HostId;
        let vm = VmSpec::new(1_000.0, 100.0, 128.0, 500.0, 1);
        let mut plan = FaultPlan::healthy();
        plan.host_outages.push(HostOutage {
            datacenter: DatacenterId(0),
            host: HostId(0),
            fail_at: SimTime::new(500.0),
            repair_at: None,
        });
        let outcome = SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                2,
                1,
                DatacenterCharacteristics::default(),
            ))
            .vms(vec![vm; 2])
            .cloudlets(vec![CloudletSpec::new(2_000.0, 0.0, 0.0, 1); 4])
            .assignment(vec![VmId(0), VmId(1), VmId(0), VmId(1)])
            .faults(plan)
            .recovery(RecoveryPolicy::default())
            .run()
            .unwrap();
        assert_eq!(outcome.finished_count(), 4, "retries save the orphans");
        assert_eq!(outcome.cloudlets_failed, 0);
        assert_eq!(outcome.resilience.retries, 2);
        assert_eq!(outcome.resilience.recovered, 2);
        assert!(outcome.resilience.wasted_work_ms > 0.0);
        assert!(outcome.goodput().unwrap() < 1.0);
        for r in &outcome.records {
            if r.finish.unwrap() > SimTime::new(500.0) {
                assert_eq!(r.vm, Some(VmId(1)), "rescued work runs on VM1");
            }
        }
    }

    #[test]
    fn recovery_respects_custom_rescheduler() {
        use crate::broker::{RecoveryPolicy, Rescheduler};
        use crate::faults::{FaultPlan, HostOutage};
        use crate::ids::{CloudletId, HostId};
        use crate::kernel::World;
        // Always picks the last VM — distinguishable from the cyclic
        // fallback, which would hand the orphans to VM1 first.
        struct LastVm;
        impl Rescheduler for LastVm {
            fn replan(&mut self, world: &World, _now: SimTime, batch: &[CloudletId]) -> Vec<VmId> {
                let last = VmId::from_index(world.vms.len() - 1);
                vec![last; batch.len()]
            }
        }
        let vm = VmSpec::new(1_000.0, 100.0, 128.0, 500.0, 1);
        let mut plan = FaultPlan::healthy();
        plan.host_outages.push(HostOutage {
            datacenter: DatacenterId(0),
            host: HostId(0),
            fail_at: SimTime::new(500.0),
            repair_at: None,
        });
        let outcome = SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                3,
                1,
                DatacenterCharacteristics::default(),
            ))
            .vms(vec![vm; 3])
            .cloudlets(vec![CloudletSpec::new(2_000.0, 0.0, 0.0, 1); 3])
            .assignment(vec![VmId(0), VmId(1), VmId(2)])
            .faults(plan)
            .recovery(RecoveryPolicy::default())
            .rescheduler(Box::new(LastVm))
            .run()
            .unwrap();
        assert_eq!(outcome.finished_count(), 3);
        assert_eq!(
            outcome.records[0].vm,
            Some(VmId(2)),
            "the rescheduler's pick wins over cyclic rebinding"
        );
    }

    #[test]
    fn recovery_abandons_after_budget() {
        use crate::broker::RecoveryPolicy;
        use crate::faults::{FaultPlan, HostOutage};
        use crate::ids::HostId;
        let vm = VmSpec::new(1_000.0, 100.0, 128.0, 500.0, 1);
        let mut plan = FaultPlan::healthy();
        plan.host_outages.push(HostOutage {
            datacenter: DatacenterId(0),
            host: HostId(0),
            fail_at: SimTime::new(100.0),
            repair_at: None,
        });
        let outcome = SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                1,
                1,
                DatacenterCharacteristics::default(),
            ))
            .vms(vec![vm])
            .cloudlets(vec![CloudletSpec::new(5_000.0, 0.0, 0.0, 1); 2])
            .assignment(vec![VmId(0); 2])
            .faults(plan)
            .recovery(RecoveryPolicy {
                max_attempts: 2,
                ..RecoveryPolicy::default()
            })
            .run()
            .unwrap();
        assert_eq!(outcome.finished_count(), 0);
        assert_eq!(outcome.cloudlets_failed, 2);
        assert_eq!(outcome.failed_count(), 2);
        assert_eq!(outcome.resilience.abandoned, 2);
        assert_eq!(outcome.resilience.recovered, 0);
        assert_eq!(outcome.completion_ratio(), Some(0.0));
    }

    #[test]
    fn recovery_excludes_legacy_resubmission() {
        use crate::broker::RecoveryPolicy;
        let vm = VmSpec::homogeneous_default();
        let err = SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                1,
                1,
                DatacenterCharacteristics::default(),
            ))
            .vms(vec![vm])
            .cloudlets(vec![CloudletSpec::homogeneous_default()])
            .assignment(vec![VmId(0)])
            .resubmit_failures(2)
            .recovery(RecoveryPolicy::default())
            .run();
        assert!(matches!(err, Err(SimError::InvalidSpec { .. })));
    }

    #[test]
    fn multi_datacenter_spread() {
        let vm = VmSpec::homogeneous_default();
        let outcome = SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                2,
                1,
                DatacenterCharacteristics::default(),
            ))
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                2,
                1,
                DatacenterCharacteristics::default(),
            ))
            .vms(vec![vm; 4])
            .cloudlets(vec![CloudletSpec::homogeneous_default(); 8])
            .assignment(base_assignment(8, 4))
            .run()
            .unwrap();
        assert_eq!(outcome.vms_created, 4);
        assert_eq!(outcome.finished_count(), 8);
    }
}
