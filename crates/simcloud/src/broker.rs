//! The datacenter broker entity.
//!
//! The broker mirrors CloudSim's `DatacenterBroker`: it requests VM
//! creation, and once every VM is acknowledged it submits cloudlets
//! according to a *pre-computed assignment* (cloudlet → VM). The assignment
//! is exactly what the paper's schedulers produce, which keeps the
//! scheduling algorithms outside the simulator — they are pure functions in
//! `biosched-core` — while the broker plays back their decisions.

use crate::cloudlet::CloudletStatus;
use crate::event::{Event, ScheduledEvent};
use crate::ids::{CloudletId, DatacenterId, EntityId, VmId};
use crate::kernel::{Context, Entity, World};
use crate::network::{transfer_time, Topology};
use crate::time::SimTime;

/// Retry/backoff policy for broker-level recovery.
///
/// A cloudlet whose attempt fails (host death, dead-VM submission) is
/// queued into the next retry batch; the batch wakes after a capped
/// exponential backoff and resubmits each member onto a VM chosen by the
/// installed [`Rescheduler`] (or cyclically over the surviving fleet).
/// Each cloudlet gets at most `max_attempts` retries before it is
/// permanently failed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Retries allowed per cloudlet (beyond its first attempt).
    pub max_attempts: u8,
    /// Backoff before the first retry batch, in ms.
    pub base_backoff_ms: f64,
    /// Multiplier applied per already-spent retry of the batch's oldest
    /// member.
    pub backoff_factor: f64,
    /// Ceiling on the backoff, in ms.
    pub max_backoff_ms: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 3,
            base_backoff_ms: 250.0,
            backoff_factor: 2.0,
            max_backoff_ms: 4_000.0,
        }
    }
}

impl RecoveryPolicy {
    /// Backoff before a batch whose oldest member has already spent
    /// `spent` retries: `min(max, base × factor^spent)`.
    pub fn backoff(&self, spent: u8) -> SimTime {
        let raw = self.base_backoff_ms * self.backoff_factor.powi(i32::from(spent));
        SimTime::new(raw.min(self.max_backoff_ms))
    }

    /// Validates the policy fields.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("RecoveryPolicy.max_attempts must be at least 1".into());
        }
        for (name, v, lo) in [
            ("base_backoff_ms", self.base_backoff_ms, 0.0),
            ("backoff_factor", self.backoff_factor, 1.0),
            ("max_backoff_ms", self.max_backoff_ms, 0.0),
        ] {
            if !(v.is_finite() && v >= lo) {
                return Err(format!("RecoveryPolicy.{name} must be >= {lo}, got {v}"));
            }
        }
        Ok(())
    }
}

/// Fault-aware rebinding strategy for retry batches.
///
/// Implementations read the current fleet state off the world — which VMs
/// are [`crate::vm::VmStatus::Active`], and each VM's
/// [`crate::vm::Vm::rate_factor`] — and return one target VM per cloudlet,
/// in batch order. Targets that turn out inactive fall back to the
/// broker's cyclic rebinding, so a rescheduler can never strand work.
/// `biosched-core` schedulers plug in through this trait (the `workload`
/// crate adapts [`Rescheduler`] onto `Scheduler::schedule_with_cache`), so
/// every scheduler kind becomes fault-tolerant with no per-scheduler code.
pub trait Rescheduler: Send {
    /// Picks a VM for each cloudlet in `batch` (ascending cloudlet id).
    fn replan(&mut self, world: &World, now: SimTime, batch: &[CloudletId]) -> Vec<VmId>;
}

/// The broker entity.
pub struct Broker {
    entity: EntityId,
    /// Target datacenter entity per datacenter id.
    dc_entities: Vec<EntityId>,
    /// Which datacenter each VM should be created in.
    vm_placement: Vec<DatacenterId>,
    /// Which VM each cloudlet runs on (the scheduler's output).
    assignment: Vec<VmId>,
    /// Optional per-cloudlet arrival times (absolute, from t=0). Without
    /// them every cloudlet is submitted as soon as the fleet is up —
    /// the paper's batch model.
    arrivals: Option<Vec<SimTime>>,
    /// Optional workflow structure: `parents[c]` lists the cloudlets that
    /// must finish before `c` may be submitted.
    parents: Option<Vec<Vec<CloudletId>>>,
    /// Reverse adjacency derived from `parents`.
    children: Vec<Vec<u32>>,
    /// Unfinished-parent counters per cloudlet.
    pending_parents: Vec<u32>,
    topology: Topology,
    outstanding_vm_acks: usize,
    fleet_ready: bool,
    vms_created: usize,
    vms_rejected: usize,
    cloudlets_returned: usize,
    cloudlets_failed: usize,
    /// Fault tolerance: rebind failed cloudlets onto surviving VMs up to
    /// this many times each. `0` disables resubmission (paper behavior).
    max_retries: u8,
    /// Per-cloudlet retry counters (allocated lazily on first failure).
    retries: Vec<u8>,
    /// Cyclic cursor over the fleet for rebinding.
    rebind_cursor: usize,
    /// Cloudlets resubmitted over the whole run (diagnostics).
    resubmissions: u64,
    /// Batched retry/backoff recovery; `None` keeps the legacy immediate
    /// rebinding controlled by `max_retries`.
    recovery: Option<RecoveryPolicy>,
    /// Fault-aware rebinding for retry batches (falls back to cyclic).
    rescheduler: Option<Box<dyn Rescheduler>>,
    /// Failed cloudlets awaiting the next retry batch.
    retry_pending: Vec<CloudletId>,
    /// Whether a `RetryWake` timer is in flight.
    retry_wake_armed: bool,
    /// First-failure time per cloudlet, cleared on completion (lazily
    /// allocated); feeds the mean-time-to-recovery metric.
    first_failed_at: Vec<Option<SimTime>>,
}

impl Broker {
    /// Creates a broker.
    ///
    /// * `dc_entities[d]` — kernel address of datacenter `d`.
    /// * `vm_placement[v]` — datacenter VM `v` is created in.
    /// * `assignment[c]` — VM cloudlet `c` is bound to.
    pub fn new(
        entity: EntityId,
        dc_entities: Vec<EntityId>,
        vm_placement: Vec<DatacenterId>,
        assignment: Vec<VmId>,
        topology: Topology,
    ) -> Self {
        assert!(
            !dc_entities.is_empty(),
            "broker needs at least one datacenter"
        );
        for dc in &vm_placement {
            assert!(
                dc.index() < dc_entities.len(),
                "VM placed in unknown datacenter {dc}"
            );
        }
        Broker {
            entity,
            dc_entities,
            vm_placement,
            assignment,
            arrivals: None,
            parents: None,
            children: Vec::new(),
            pending_parents: Vec::new(),
            topology,
            outstanding_vm_acks: 0,
            fleet_ready: false,
            vms_created: 0,
            vms_rejected: 0,
            cloudlets_returned: 0,
            cloudlets_failed: 0,
            max_retries: 0,
            retries: Vec::new(),
            rebind_cursor: 0,
            resubmissions: 0,
            recovery: None,
            rescheduler: None,
            retry_pending: Vec::new(),
            retry_wake_armed: false,
            first_failed_at: Vec::new(),
        }
    }

    /// Enables batched retry/backoff recovery. Mutually exclusive with
    /// [`Broker::with_resubmission`] (the legacy immediate rebind).
    pub fn with_recovery(
        mut self,
        policy: RecoveryPolicy,
        rescheduler: Option<Box<dyn Rescheduler>>,
    ) -> Self {
        assert_eq!(
            self.max_retries, 0,
            "recovery and legacy resubmission are mutually exclusive"
        );
        policy.validate().expect("invalid RecoveryPolicy");
        self.recovery = Some(policy);
        self.rescheduler = rescheduler;
        self
    }

    /// Enables fault tolerance: a cloudlet whose VM dies (or never came
    /// up) is rebound to the next surviving VM and resubmitted, up to
    /// `max_retries` times.
    pub fn with_resubmission(mut self, max_retries: u8) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Cloudlets resubmitted after failures.
    pub fn resubmissions(&self) -> u64 {
        self.resubmissions
    }

    /// Declares workflow precedence: `parents[c]` must all finish before
    /// cloudlet `c` is submitted. The caller is responsible for supplying
    /// an acyclic graph ([`crate::simulation::SimulationBuilder`]
    /// validates this).
    pub fn with_dependencies(mut self, parents: Vec<Vec<CloudletId>>) -> Self {
        assert_eq!(
            parents.len(),
            self.assignment.len(),
            "dependencies must cover every cloudlet"
        );
        let n = parents.len();
        let mut children = vec![Vec::new(); n];
        let mut pending = vec![0u32; n];
        for (c, ps) in parents.iter().enumerate() {
            pending[c] = u32::try_from(ps.len()).expect("parent list fits u32");
            for p in ps {
                children[p.index()].push(c as u32);
            }
        }
        self.children = children;
        self.pending_parents = pending;
        self.parents = Some(parents);
        self
    }

    /// Marks `child` as released outside the broker: the sharded DAG
    /// driver resolves same-VM dependency chains inside lane replay, so
    /// the pending-parent counter is given a sentinel excess that parent
    /// completions can never drain. The counter thus never reaches zero
    /// and [`Broker::on_parent_done`] never double-releases the child.
    pub(crate) fn mask_release(&mut self, child: CloudletId) {
        self.pending_parents[child.index()] += 1;
    }

    /// Staggers cloudlet submissions: cloudlet `c` arrives at
    /// `arrivals[c]` (absolute simulated time). Cloudlets whose arrival
    /// precedes fleet readiness are submitted as soon as the fleet is up.
    pub fn with_arrivals(mut self, arrivals: Vec<SimTime>) -> Self {
        assert_eq!(
            arrivals.len(),
            self.assignment.len(),
            "arrivals must cover every cloudlet"
        );
        self.arrivals = Some(arrivals);
        self
    }

    /// VMs successfully created.
    pub fn vms_created(&self) -> usize {
        self.vms_created
    }

    /// VMs the datacenters refused.
    pub fn vms_rejected(&self) -> usize {
        self.vms_rejected
    }

    /// Cloudlets completed and returned.
    pub fn cloudlets_returned(&self) -> usize {
        self.cloudlets_returned
    }

    /// Cloudlets that could not run (bound to rejected VMs).
    pub fn cloudlets_failed(&self) -> usize {
        self.cloudlets_failed
    }

    fn request_vms(&mut self, world: &mut World, ctx: &mut Context<'_>) {
        assert_eq!(
            world.vms.len(),
            self.vm_placement.len(),
            "placement must cover every VM"
        );
        self.outstanding_vm_acks = world.vms.len();
        if self.outstanding_vm_acks == 0 {
            self.submit_cloudlets(world, ctx);
            return;
        }
        for (idx, dc) in self.vm_placement.iter().enumerate() {
            let vm = VmId::from_index(idx);
            world.vm_mut(vm).status = crate::vm::VmStatus::Requested;
            let latency = self.topology.latency_to(*dc);
            ctx.send(
                self.dc_entities[dc.index()],
                latency,
                Event::VmCreate { vm },
            );
        }
    }

    /// Fleet is up: submit every cloudlet whose parents (if any) are done.
    fn submit_cloudlets(&mut self, world: &mut World, ctx: &mut Context<'_>) {
        assert_eq!(
            world.cloudlets.len(),
            self.assignment.len(),
            "assignment must cover every cloudlet"
        );
        self.fleet_ready = true;
        if self.parents.is_none() && self.max_retries == 0 && self.recovery.is_none() {
            self.submit_all_batched(world, ctx);
            return;
        }
        for idx in 0..self.assignment.len() {
            let ready = self.parents.is_none() || self.pending_parents[idx] == 0;
            if ready {
                self.submit_one(world, ctx, idx);
            }
        }
    }

    /// The batch-model fast path: cloudlets that reach the same VM at the
    /// same instant travel in one `CloudletSubmitBatch` event, so the VM's
    /// scheduler settles once per group instead of once per cloudlet.
    ///
    /// Per-VM submission order is unchanged (groups keep cloudlet-index
    /// order, and distinct delivery times stay distinct events), so this
    /// is trace-equivalent to the per-cloudlet path. Workflow runs keep
    /// that path because child submissions depend on return order, and so
    /// do resubmission runs, where a rebind may interleave with a group.
    fn submit_all_batched(&mut self, world: &mut World, ctx: &mut Context<'_>) {
        let mut groups: Vec<(VmId, SimTime, Vec<CloudletId>)> = Vec::new();
        let mut group_of: std::collections::HashMap<(u32, u64), usize> =
            std::collections::HashMap::new();
        for idx in 0..self.assignment.len() {
            let cloudlet = CloudletId::from_index(idx);
            let vm_id = self.assignment[idx];
            let vm = world.vm(vm_id);
            if !vm.is_active() {
                // Dead-VM bookkeeping (cascade_failure) sends no events,
                // so handling it inline preserves event order.
                self.cascade_failure(world, cloudlet);
                continue;
            }
            let dc = vm.datacenter.expect("active VM has a datacenter");
            let latency = self.topology.latency_to(dc);
            let spec = &world.cloudlets[idx].spec;
            let in_delay = transfer_time(spec.file_size_mb, vm.spec.bw_mbps);
            let wait = self
                .arrivals
                .as_ref()
                .map(|a| a[idx].saturating_sub(ctx.now))
                .unwrap_or(SimTime::ZERO);
            world.cloudlet_mut(cloudlet).submit_time = Some(ctx.now + wait);
            let delay = wait + latency + in_delay;
            let slot = *group_of
                .entry((vm_id.0, delay.as_millis().to_bits()))
                .or_insert_with(|| {
                    groups.push((vm_id, delay, Vec::new()));
                    groups.len() - 1
                });
            groups[slot].2.push(cloudlet);
        }
        for (vm_id, delay, mut cloudlets) in groups {
            let dc = world.vm(vm_id).datacenter.expect("grouped VM is placed");
            let dest = self.dc_entities[dc.index()];
            if cloudlets.len() == 1 {
                let cloudlet = cloudlets.pop().expect("length checked");
                ctx.send(
                    dest,
                    delay,
                    Event::CloudletSubmit {
                        cloudlet,
                        vm: vm_id,
                    },
                );
            } else {
                ctx.send(
                    dest,
                    delay,
                    Event::CloudletSubmitBatch {
                        vm: vm_id,
                        cloudlets,
                    },
                );
            }
        }
    }

    /// Picks the next active VM cyclically, if any survives.
    fn next_active_vm(&mut self, world: &World) -> Option<VmId> {
        let n = world.vms.len();
        for step in 0..n {
            let idx = (self.rebind_cursor + step) % n;
            if world.vms[idx].is_active() {
                self.rebind_cursor = (idx + 1) % n;
                return Some(VmId::from_index(idx));
            }
        }
        None
    }

    /// Attempts to rebind a dead cloudlet onto a surviving VM. Returns
    /// true if it was resubmitted.
    fn try_resubmit(&mut self, world: &mut World, ctx: &mut Context<'_>, idx: usize) -> bool {
        if self.max_retries == 0 {
            return false;
        }
        if self.retries.is_empty() {
            self.retries = vec![0; self.assignment.len()];
        }
        if self.retries[idx] >= self.max_retries {
            return false;
        }
        let Some(new_vm) = self.next_active_vm(world) else {
            return false;
        };
        self.retries[idx] += 1;
        self.resubmissions += 1;
        self.assignment[idx] = new_vm;
        // Reset the record: the cloudlet gets a fresh life on a new VM.
        let cl = world.cloudlet_mut(CloudletId::from_index(idx));
        cl.status = crate::cloudlet::CloudletStatus::Created;
        cl.vm = None;
        cl.start_time = None;
        cl.finish_time = None;
        self.submit_one(world, ctx, idx);
        true
    }

    /// Submits one ready cloudlet, or fails it (and its descendants) if
    /// its VM never came up.
    fn submit_one(&mut self, world: &mut World, ctx: &mut Context<'_>, idx: usize) {
        let cloudlet = CloudletId::from_index(idx);
        let vm_id = self.assignment[idx];
        let vm = world.vm(vm_id);
        if !vm.is_active() {
            if self.recovery.is_some() {
                // Recovery mode: the dead-VM submission becomes a retry
                // candidate instead of a terminal failure.
                self.queue_retry(world, ctx, cloudlet);
            } else if !self.try_resubmit(world, ctx, idx) {
                self.cascade_failure(world, cloudlet);
            }
            return;
        }
        let dc = vm.datacenter.expect("active VM has a datacenter");
        let latency = self.topology.latency_to(dc);
        // Input file travels over the VM's bandwidth before execution.
        let spec = &world.cloudlets[idx].spec;
        let in_delay = transfer_time(spec.file_size_mb, vm.spec.bw_mbps);
        // An arrival in the future defers submission until then.
        let wait = self
            .arrivals
            .as_ref()
            .map(|a| a[idx].saturating_sub(ctx.now))
            .unwrap_or(SimTime::ZERO);
        let cl = world.cloudlet_mut(cloudlet);
        cl.submit_time = Some(ctx.now + wait);
        ctx.send(
            self.dc_entities[dc.index()],
            wait + latency + in_delay,
            Event::CloudletSubmit {
                cloudlet,
                vm: vm_id,
            },
        );
    }

    /// A parent completed: release any children that became ready.
    fn on_parent_done(&mut self, world: &mut World, ctx: &mut Context<'_>, parent: CloudletId) {
        if self.parents.is_none() {
            return;
        }
        let released: Vec<u32> = self.children[parent.index()]
            .iter()
            .copied()
            .filter(|&child| {
                let pending = &mut self.pending_parents[child as usize];
                debug_assert!(*pending > 0, "child released twice");
                *pending -= 1;
                *pending == 0
            })
            .collect();
        if self.fleet_ready {
            for child in released {
                self.submit_one(world, ctx, child as usize);
            }
        }
    }

    /// Books a failed attempt and queues the cloudlet into the next retry
    /// batch (or abandons it once its retry budget is spent). The wasted
    /// execution time of the attempt is charged to the world's resilience
    /// counters here, at the moment of failure.
    fn queue_retry(&mut self, world: &mut World, ctx: &mut Context<'_>, cloudlet: CloudletId) {
        let policy = self.recovery.expect("queue_retry requires recovery");
        let idx = cloudlet.index();
        if self.retries.is_empty() {
            self.retries = vec![0; self.assignment.len()];
        }
        if self.first_failed_at.is_empty() {
            self.first_failed_at = vec![None; self.assignment.len()];
        }
        {
            let cl = world.cloudlet(cloudlet);
            if let (Some(start), None) = (cl.start_time, cl.finish_time) {
                world.resilience.wasted_work_ms += ctx.now.saturating_sub(start).as_millis();
            }
        }
        if self.first_failed_at[idx].is_none() {
            self.first_failed_at[idx] = Some(ctx.now);
        }
        if self.retries[idx] >= policy.max_attempts {
            self.abandon(world, cloudlet);
            return;
        }
        self.retry_pending.push(cloudlet);
        self.arm_retry_wake(ctx, policy);
    }

    /// Arms the single in-flight `RetryWake` timer, backed off by the
    /// retry count of the oldest pending cloudlet.
    fn arm_retry_wake(&mut self, ctx: &mut Context<'_>, policy: RecoveryPolicy) {
        if self.retry_wake_armed || self.retry_pending.is_empty() {
            return;
        }
        self.retry_wake_armed = true;
        let spent = self.retries[self.retry_pending[0].index()];
        ctx.send_self(policy.backoff(spent), Event::RetryWake);
    }

    /// A retry batch's backoff expired: replan the pending cloudlets onto
    /// the surviving fleet and resubmit them.
    fn flush_retries(&mut self, world: &mut World, ctx: &mut Context<'_>) {
        let policy = self.recovery.expect("flush_retries requires recovery");
        if self.retry_pending.is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.retry_pending);
        batch.sort_unstable_by_key(|c| c.0);
        batch.dedup();
        let targets: Vec<Option<VmId>> = match self.rescheduler.as_mut() {
            Some(rs) => {
                let picked = rs.replan(world, ctx.now, &batch);
                assert_eq!(
                    picked.len(),
                    batch.len(),
                    "rescheduler must pick one VM per cloudlet"
                );
                picked.into_iter().map(Some).collect()
            }
            None => vec![None; batch.len()],
        };
        for (i, &cloudlet) in batch.iter().enumerate() {
            let idx = cloudlet.index();
            // An inactive pick (or no rescheduler) falls back to cyclic
            // rebinding over whatever survives.
            let target = targets[i]
                .filter(|v| v.index() < world.vms.len() && world.vm(*v).is_active())
                .or_else(|| self.next_active_vm(world));
            let Some(vm) = target else {
                // Nothing alive right now. A scheduled repair may still
                // bring capacity back, so requeue — but charge the
                // attempt, which bounds a fleet that never recovers to
                // `max_attempts` idle wakes per cloudlet.
                self.retries[idx] += 1;
                if self.retries[idx] >= policy.max_attempts {
                    self.abandon(world, cloudlet);
                } else {
                    self.retry_pending.push(cloudlet);
                }
                continue;
            };
            self.retries[idx] += 1;
            self.resubmissions += 1;
            world.resilience.retries += 1;
            self.assignment[idx] = vm;
            // Fresh life on the new VM: wipe the previous attempt.
            let cl = world.cloudlet_mut(cloudlet);
            cl.status = CloudletStatus::Created;
            cl.vm = None;
            cl.start_time = None;
            cl.finish_time = None;
            self.submit_one(world, ctx, idx);
        }
        self.arm_retry_wake(ctx, policy);
    }

    /// Permanently fails a cloudlet whose retry budget is spent, plus any
    /// workflow descendants that can now never run.
    fn abandon(&mut self, world: &mut World, cloudlet: CloudletId) {
        world.resilience.abandoned += 1;
        let cl = world.cloudlet_mut(cloudlet);
        if cl.status != CloudletStatus::Failed {
            cl.status = CloudletStatus::Failed;
        }
        self.cloudlets_failed += 1;
        if self.parents.is_some() {
            let children: Vec<u32> = self.children[cloudlet.index()].clone();
            for child in children {
                self.cascade_failure(world, CloudletId(child));
            }
        }
    }

    /// Marks a cloudlet failed and transitively fails every descendant
    /// that can now never run.
    fn cascade_failure(&mut self, world: &mut World, root: CloudletId) {
        let mut stack = vec![root.0];
        while let Some(c) = stack.pop() {
            let cl = world.cloudlet_mut(CloudletId(c));
            if cl.status == CloudletStatus::Failed {
                continue;
            }
            cl.status = CloudletStatus::Failed;
            self.cloudlets_failed += 1;
            if self.parents.is_some() {
                stack.extend(self.children[c as usize].iter().copied());
            }
        }
    }
}

impl Entity for Broker {
    fn id(&self) -> EntityId {
        self.entity
    }

    fn handle(&mut self, world: &mut World, ctx: &mut Context<'_>, ev: ScheduledEvent) {
        match ev.event {
            Event::Start => self.request_vms(world, ctx),
            Event::VmCreateAck { vm: _, success } => {
                if success {
                    self.vms_created += 1;
                } else {
                    self.vms_rejected += 1;
                }
                self.outstanding_vm_acks -= 1;
                if self.outstanding_vm_acks == 0 {
                    self.submit_cloudlets(world, ctx);
                }
            }
            Event::CloudletReturn { cloudlet } => {
                debug_assert!(
                    world.cloudlet(cloudlet).is_finished(),
                    "returned cloudlet must be finished"
                );
                self.cloudlets_returned += 1;
                // Close the recovery window for a cloudlet that had
                // failed at least once and now completed.
                if let Some(slot) = self.first_failed_at.get_mut(cloudlet.index()) {
                    if let Some(t0) = slot.take() {
                        world.resilience.recovered += 1;
                        world.resilience.recovery_time_ms += ctx.now.saturating_sub(t0).as_millis();
                    }
                }
                self.on_parent_done(world, ctx, cloudlet);
            }
            Event::CloudletFailed { cloudlet } => {
                debug_assert_eq!(
                    world.cloudlet(cloudlet).status,
                    CloudletStatus::Failed,
                    "reported cloudlet must be failed"
                );
                // Batched retry/backoff recovery takes precedence; the
                // legacy path rebinds immediately.
                if self.recovery.is_some() {
                    self.queue_retry(world, ctx, cloudlet);
                    return;
                }
                // Fault tolerance first: a surviving VM can take the work.
                if self.try_resubmit(world, ctx, cloudlet.index()) {
                    return;
                }
                // The datacenter marked the cloudlet itself; the broker
                // counts it and fails any descendants that now cannot run.
                self.cloudlets_failed += 1;
                if self.parents.is_some() {
                    let children: Vec<u32> = self.children[cloudlet.index()].clone();
                    for child in children {
                        self.cascade_failure(world, CloudletId(child));
                    }
                }
            }
            Event::RetryWake => {
                self.retry_wake_armed = false;
                self.flush_retries(world, ctx);
            }
            other => panic!("broker received unexpected event {other:?}"),
        }
    }
}

/// Delay before execution for a cloudlet: broker→DC latency + input staging.
///
/// Exposed for analytical tests that want to predict event times.
pub fn submission_delay(
    topology: &Topology,
    dc: DatacenterId,
    file_size_mb: f64,
    vm_bw: f64,
) -> SimTime {
    topology.latency_to(dc) + transfer_time(file_size_mb, vm_bw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submission_delay_combines_latency_and_staging() {
        let topo = Topology::with_latencies(vec![10.0]);
        let d = submission_delay(&topo, DatacenterId(0), 300.0, 500.0);
        // 10ms latency + 4.8s staging.
        assert!((d.as_millis() - 4_810.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unknown datacenter")]
    fn placement_into_unknown_dc_rejected() {
        let _ = Broker::new(
            EntityId(0),
            vec![EntityId(1)],
            vec![DatacenterId(3)],
            vec![],
            Topology::flat(1),
        );
    }

    #[test]
    #[should_panic(expected = "at least one datacenter")]
    fn broker_requires_datacenters() {
        let _ = Broker::new(EntityId(0), vec![], vec![], vec![], Topology::flat(0));
    }
}
