//! VM-to-host allocation policies.
//!
//! When a datacenter receives a VM creation request it asks its allocation
//! policy to pick a host. These policies mirror CloudSim's
//! `VmAllocationPolicySimple` (least-loaded) plus the classic first-fit /
//! best-fit / round-robin alternatives used in ablations.

use crate::host::Host;
use crate::ids::HostId;
use crate::vm::VmSpec;

/// Chooses a host for an incoming VM.
///
/// Implementations must only return hosts for which
/// [`Host::is_suitable_for`] holds; the datacenter debug-asserts this.
pub trait VmAllocationPolicy: Send {
    /// Picks a host for `vm` among `hosts`, or `None` if nothing fits.
    fn select_host(&mut self, hosts: &[Host], vm: &VmSpec) -> Option<HostId>;

    /// Human-readable policy name.
    fn name(&self) -> &'static str;
}

/// Fingerprint of the fit-relevant VmSpec fields, so scans for identical
/// requirements can share a resume cursor.
type SpecKey = (u32, u64, u64, u64, u64);

fn spec_key(vm: &VmSpec) -> SpecKey {
    (
        vm.pes,
        vm.mips.to_bits(),
        vm.ram_mb.to_bits(),
        vm.bw_mbps.to_bits(),
        vm.size_mb.to_bits(),
    )
}

/// First host that fits, scanning in id order.
///
/// Keeps a per-spec resume cursor: host capacity in this simulator only
/// shrinks (VMs are never released back mid-run, and failed hosts never
/// recover), so a host that could not fit a given spec once can never fit
/// it later. Each scan resumes where the previous scan for the same spec
/// stopped, making a placement phase O(hosts + VMs) instead of
/// O(hosts × VMs) while returning exactly the hosts a full rescan would.
#[derive(Debug, Default, Clone)]
pub struct FirstFit {
    /// (spec fingerprint, first host index not yet ruled out).
    cursors: Vec<(SpecKey, usize)>,
}

impl VmAllocationPolicy for FirstFit {
    fn select_host(&mut self, hosts: &[Host], vm: &VmSpec) -> Option<HostId> {
        let key = spec_key(vm);
        let slot = match self.cursors.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                self.cursors.push((key, 0));
                self.cursors.len() - 1
            }
        };
        let start = self.cursors[slot].1.min(hosts.len());
        match hosts[start..].iter().position(|h| h.is_suitable_for(vm)) {
            Some(offset) => {
                let idx = start + offset;
                self.cursors[slot].1 = idx;
                Some(hosts[idx].id)
            }
            None => {
                self.cursors[slot].1 = hosts.len();
                None
            }
        }
    }

    fn name(&self) -> &'static str {
        "first-fit"
    }
}

/// Host that leaves the least free RAM after placement (tightest packing).
#[derive(Debug, Default, Clone)]
pub struct BestFit;

impl VmAllocationPolicy for BestFit {
    fn select_host(&mut self, hosts: &[Host], vm: &VmSpec) -> Option<HostId> {
        hosts
            .iter()
            .filter(|h| h.is_suitable_for(vm))
            .min_by(|a, b| {
                let la = a.available_ram() - vm.ram_mb;
                let lb = b.available_ram() - vm.ram_mb;
                la.partial_cmp(&lb).expect("finite leftovers")
            })
            .map(|h| h.id)
    }

    fn name(&self) -> &'static str {
        "best-fit"
    }
}

/// CloudSim's `VmAllocationPolicySimple`: host with the most free PEs.
#[derive(Debug, Default, Clone)]
pub struct LeastLoaded;

impl VmAllocationPolicy for LeastLoaded {
    fn select_host(&mut self, hosts: &[Host], vm: &VmSpec) -> Option<HostId> {
        hosts
            .iter()
            .filter(|h| h.is_suitable_for(vm))
            .max_by_key(|h| h.free_pes())
            .map(|h| h.id)
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

/// Energy-motivated consolidation: the suitable host with the *fewest*
/// free PEs (ties to the lowest id). Packing VMs onto already-busy hosts
/// leaves the rest idle — the placement half of the power-aware policies
/// in the paper's related work ([27]).
#[derive(Debug, Default, Clone)]
pub struct Consolidate;

impl VmAllocationPolicy for Consolidate {
    fn select_host(&mut self, hosts: &[Host], vm: &VmSpec) -> Option<HostId> {
        hosts
            .iter()
            .filter(|h| h.is_suitable_for(vm))
            .min_by_key(|h| h.free_pes())
            .map(|h| h.id)
    }

    fn name(&self) -> &'static str {
        "consolidate"
    }
}

/// Cycles through hosts, skipping ones that do not fit.
#[derive(Debug, Default, Clone)]
pub struct RoundRobinHosts {
    cursor: usize,
}

impl VmAllocationPolicy for RoundRobinHosts {
    fn select_host(&mut self, hosts: &[Host], vm: &VmSpec) -> Option<HostId> {
        if hosts.is_empty() {
            return None;
        }
        let n = hosts.len();
        for step in 0..n {
            let idx = (self.cursor + step) % n;
            if hosts[idx].is_suitable_for(vm) {
                self.cursor = (idx + 1) % n;
                return Some(hosts[idx].id);
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostSpec;

    fn hosts(n: usize) -> Vec<Host> {
        (0..n)
            .map(|i| {
                Host::new(
                    HostId(i as u32),
                    HostSpec::new(2, 1_000.0, 1_024.0, 1_000.0, 10_000.0),
                )
            })
            .collect()
    }

    fn small_vm() -> VmSpec {
        VmSpec::new(500.0, 1_000.0, 256.0, 100.0, 1)
    }

    #[test]
    fn first_fit_prefers_low_ids() {
        let hs = hosts(3);
        let mut p = FirstFit::default();
        assert_eq!(p.select_host(&hs, &small_vm()), Some(HostId(0)));
        assert_eq!(p.name(), "first-fit");
    }

    #[test]
    fn first_fit_skips_full_hosts() {
        let mut hs = hosts(3);
        // Fill host 0 completely.
        let big = VmSpec::new(1_000.0, 10_000.0, 1_024.0, 1_000.0, 2);
        assert!(hs[0].allocate_vm(crate::ids::VmId(99), &big));
        let mut p = FirstFit::default();
        assert_eq!(p.select_host(&hs, &small_vm()), Some(HostId(1)));
    }

    #[test]
    fn best_fit_packs_tightest() {
        let mut hs = hosts(3);
        // Host 1 has less free RAM -> best fit picks it.
        let filler = VmSpec::new(100.0, 100.0, 700.0, 10.0, 1);
        assert!(hs[1].allocate_vm(crate::ids::VmId(50), &filler));
        let mut p = BestFit;
        assert_eq!(p.select_host(&hs, &small_vm()), Some(HostId(1)));
    }

    #[test]
    fn least_loaded_spreads() {
        let mut hs = hosts(3);
        let one_pe = small_vm();
        assert!(hs[0].allocate_vm(crate::ids::VmId(1), &one_pe));
        let mut p = LeastLoaded;
        // Hosts 1 and 2 both have 2 free PEs; max_by_key keeps the last max.
        let sel = p.select_host(&hs, &one_pe).unwrap();
        assert_ne!(sel, HostId(0));
    }

    #[test]
    fn round_robin_cycles() {
        let hs = hosts(3);
        let mut p = RoundRobinHosts::default();
        let picks: Vec<_> = (0..6)
            .map(|_| p.select_host(&hs, &small_vm()).unwrap())
            .collect();
        assert_eq!(
            picks,
            vec![
                HostId(0),
                HostId(1),
                HostId(2),
                HostId(0),
                HostId(1),
                HostId(2)
            ]
        );
    }

    #[test]
    fn consolidate_packs_busy_hosts_first() {
        let mut hs = hosts(3);
        let one_pe = small_vm();
        // Host 1 already carries a VM: consolidation targets it.
        assert!(hs[1].allocate_vm(crate::ids::VmId(1), &one_pe));
        let mut p = Consolidate;
        assert_eq!(p.select_host(&hs, &one_pe), Some(HostId(1)));
        assert_eq!(p.name(), "consolidate");
        // Fill host 1 completely; the next pick falls back to an idle one.
        assert!(hs[1].allocate_vm(crate::ids::VmId(2), &one_pe));
        let next = p.select_host(&hs, &one_pe).unwrap();
        assert_ne!(next, HostId(1));
    }

    #[test]
    fn all_policies_return_none_when_nothing_fits() {
        let hs = hosts(2);
        let huge = VmSpec::new(1_000.0, 99_999.0, 9_999.0, 9_999.0, 4);
        assert_eq!(FirstFit::default().select_host(&hs, &huge), None);
        assert_eq!(BestFit.select_host(&hs, &huge), None);
        assert_eq!(LeastLoaded.select_host(&hs, &huge), None);
        assert_eq!(Consolidate.select_host(&hs, &huge), None);
        assert_eq!(RoundRobinHosts::default().select_host(&hs, &huge), None);
        assert_eq!(RoundRobinHosts::default().select_host(&[], &huge), None);
    }
}
