//! Seeded fault-injection plans.
//!
//! A [`FaultPlan`] is a deterministic chaos timeline compiled into the
//! event queue before a run starts: per-host fail/repair windows and
//! per-VM straggler (MIPS-degradation) intervals. Plans are either built
//! explicitly or generated from a [`FaultSpec`] and a seed via
//! [`FaultPlan::generate`]; the same `(spec, seed)` pair always produces
//! the same plan, so a faulty run is exactly as reproducible as a healthy
//! one. An empty plan injects nothing and leaves the event stream
//! byte-identical to a run without fault injection.

use rand::Rng;

use crate::ids::{DatacenterId, HostId, VmId};
use crate::rng::stream;
use crate::time::SimTime;

/// One host outage: the host fails at `fail_at` and, if `repair_at` is
/// set, comes back online then (its dead VMs are re-provisioned and the
/// capacity rejoins the fleet). `repair_at == None` is a permanent loss.
#[derive(Debug, Clone, PartialEq)]
pub struct HostOutage {
    /// Datacenter that owns the host.
    pub datacenter: DatacenterId,
    /// Host within that datacenter.
    pub host: HostId,
    /// When the host goes down.
    pub fail_at: SimTime,
    /// When the host comes back, if ever. Must be after `fail_at`.
    pub repair_at: Option<SimTime>,
}

/// One straggler interval: the VM's effective per-PE rate becomes
/// `factor × spec.mips` at `from`, and returns to nominal at `until`
/// (or stays degraded for the rest of the run when `None`).
#[derive(Debug, Clone, PartialEq)]
pub struct VmSlowdown {
    /// The straggling VM.
    pub vm: VmId,
    /// Onset of the slowdown.
    pub from: SimTime,
    /// Degradation factor in `(0, 1]` applied to the VM's nominal MIPS.
    pub factor: f64,
    /// End of the slowdown, if any. Must be after `from`.
    pub until: Option<SimTime>,
}

/// A deterministic chaos timeline: everything that will go wrong in a
/// run, decided up front.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Host fail/repair windows.
    pub host_outages: Vec<HostOutage>,
    /// VM straggler intervals.
    pub vm_slowdowns: Vec<VmSlowdown>,
}

impl FaultPlan {
    /// The all-healthy plan: injects nothing.
    pub fn healthy() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.host_outages.is_empty() && self.vm_slowdowns.is_empty()
    }

    /// Checks every entry against the fleet shape: datacenter/host/VM
    /// indices in range, times valid, factors in `(0, 1]`, repairs after
    /// failures and slowdown ends after their onsets.
    ///
    /// `hosts_per_dc[d]` is the host count of datacenter `d`.
    pub fn validate(&self, hosts_per_dc: &[usize], vms: usize) -> Result<(), String> {
        for (i, o) in self.host_outages.iter().enumerate() {
            let Some(&hosts) = hosts_per_dc.get(o.datacenter.index()) else {
                return Err(format!(
                    "outage {i} references unknown datacenter {}",
                    o.datacenter
                ));
            };
            if o.host.index() >= hosts {
                return Err(format!(
                    "outage {i} references host {} but datacenter {} has {hosts} hosts",
                    o.host, o.datacenter
                ));
            }
            if !o.fail_at.is_valid_clock() {
                return Err(format!("outage {i} has invalid fail time {:?}", o.fail_at));
            }
            if let Some(r) = o.repair_at {
                if !r.is_valid_clock() || r <= o.fail_at {
                    return Err(format!(
                        "outage {i} repairs at {r:?}, not after its failure at {:?}",
                        o.fail_at
                    ));
                }
            }
        }
        for (i, s) in self.vm_slowdowns.iter().enumerate() {
            if s.vm.index() >= vms {
                return Err(format!(
                    "slowdown {i} references VM {} but the fleet has {vms} VMs",
                    s.vm
                ));
            }
            if !s.from.is_valid_clock() {
                return Err(format!("slowdown {i} has invalid onset {:?}", s.from));
            }
            if !(s.factor > 0.0 && s.factor <= 1.0 && s.factor.is_finite()) {
                return Err(format!(
                    "slowdown {i} factor must be in (0, 1], got {}",
                    s.factor
                ));
            }
            if let Some(u) = s.until {
                if !u.is_valid_clock() || u <= s.from {
                    return Err(format!(
                        "slowdown {i} ends at {u:?}, not after its onset at {:?}",
                        s.from
                    ));
                }
            }
        }
        Ok(())
    }

    /// Generates a plan from a [`FaultSpec`] and a seed.
    ///
    /// Draw order is fixed — hosts in `(datacenter, host)` order on the
    /// `"faults/hosts"` stream, then VMs in id order on the
    /// `"faults/stragglers"` stream — so the plan depends only on
    /// `(spec, seed)` and the fleet shape, never on thread count or
    /// iteration timing.
    pub fn generate(spec: &FaultSpec, seed: u64, hosts_per_dc: &[usize], vms: usize) -> Self {
        spec.validate().expect("invalid FaultSpec");
        let mut plan = FaultPlan::default();
        let mut host_rng = stream(seed, "faults/hosts");
        for (dc, &hosts) in hosts_per_dc.iter().enumerate() {
            for host in 0..hosts {
                let roll: f64 = host_rng.gen_range(0.0..1.0);
                let fail_at = host_rng.gen_range(spec.fail_window_ms.0..=spec.fail_window_ms.1);
                let repair_delay = spec
                    .repair_after_ms
                    .map(|(lo, hi)| host_rng.gen_range(lo..=hi));
                if roll < spec.host_fail_fraction {
                    plan.host_outages.push(HostOutage {
                        datacenter: DatacenterId::from_index(dc),
                        host: HostId::from_index(host),
                        fail_at: SimTime::new(fail_at),
                        repair_at: repair_delay.map(|d| SimTime::new(fail_at + d)),
                    });
                }
            }
        }
        let mut vm_rng = stream(seed, "faults/stragglers");
        for vm in 0..vms {
            let roll: f64 = vm_rng.gen_range(0.0..1.0);
            let from = vm_rng.gen_range(spec.straggler_window_ms.0..=spec.straggler_window_ms.1);
            let duration = spec
                .straggler_duration_ms
                .map(|(lo, hi)| vm_rng.gen_range(lo..=hi));
            if roll < spec.straggler_fraction {
                plan.vm_slowdowns.push(VmSlowdown {
                    vm: VmId::from_index(vm),
                    from: SimTime::new(from),
                    factor: spec.straggler_factor,
                    until: duration.map(|d| SimTime::new(from + d)),
                });
            }
        }
        plan
    }
}

/// Statistical description of a chaos campaign, turned into a concrete
/// [`FaultPlan`] by [`FaultPlan::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Fraction of hosts (per datacenter, independently) that fail.
    pub host_fail_fraction: f64,
    /// Window `(lo, hi)` in ms within which each failure lands.
    pub fail_window_ms: (f64, f64),
    /// Repair delay range in ms after the failure; `None` means failed
    /// hosts never come back.
    pub repair_after_ms: Option<(f64, f64)>,
    /// Fraction of VMs that straggle.
    pub straggler_fraction: f64,
    /// Degradation factor in `(0, 1]` applied to a straggler's MIPS.
    pub straggler_factor: f64,
    /// Window `(lo, hi)` in ms within which each slowdown starts.
    pub straggler_window_ms: (f64, f64),
    /// Slowdown duration range in ms; `None` means stragglers never
    /// recover their nominal speed.
    pub straggler_duration_ms: Option<(f64, f64)>,
}

impl Default for FaultSpec {
    /// A moderate campaign: 20% of hosts fail in the first 10 simulated
    /// seconds and repair 2–6 s later; 20% of VMs run at half speed for
    /// 2–8 s starting somewhere in the first 10 s.
    fn default() -> Self {
        FaultSpec {
            host_fail_fraction: 0.2,
            fail_window_ms: (500.0, 10_000.0),
            repair_after_ms: Some((2_000.0, 6_000.0)),
            straggler_fraction: 0.2,
            straggler_factor: 0.5,
            straggler_window_ms: (500.0, 10_000.0),
            straggler_duration_ms: Some((2_000.0, 8_000.0)),
        }
    }
}

impl FaultSpec {
    /// Checks fractions, factors and windows for plausibility.
    pub fn validate(&self) -> Result<(), String> {
        fn fraction(name: &str, v: f64) -> Result<(), String> {
            if v.is_finite() && (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("FaultSpec.{name} must be in [0, 1], got {v}"))
            }
        }
        fn window(name: &str, (lo, hi): (f64, f64)) -> Result<(), String> {
            if lo.is_finite() && hi.is_finite() && lo >= 0.0 && hi >= lo {
                Ok(())
            } else {
                Err(format!(
                    "FaultSpec.{name} must be an ascending non-negative range, got {lo}..{hi}"
                ))
            }
        }
        fraction("host_fail_fraction", self.host_fail_fraction)?;
        fraction("straggler_fraction", self.straggler_fraction)?;
        if !(self.straggler_factor.is_finite()
            && self.straggler_factor > 0.0
            && self.straggler_factor <= 1.0)
        {
            return Err(format!(
                "FaultSpec.straggler_factor must be in (0, 1], got {}",
                self.straggler_factor
            ));
        }
        window("fail_window_ms", self.fail_window_ms)?;
        window("straggler_window_ms", self.straggler_window_ms)?;
        if let Some(r) = self.repair_after_ms {
            window("repair_after_ms", r)?;
            if r.0 <= 0.0 {
                return Err("FaultSpec.repair_after_ms must start above zero".into());
            }
        }
        if let Some(d) = self.straggler_duration_ms {
            window("straggler_duration_ms", d)?;
            if d.0 <= 0.0 {
                return Err("FaultSpec.straggler_duration_ms must start above zero".into());
            }
        }
        Ok(())
    }

    /// Parses the CLI `--faults` mini-language: comma-separated
    /// `key=value` pairs over [`FaultSpec::default`], where ranges are
    /// written `lo..hi` and `repair`/`slowdur` accept `never`.
    ///
    /// Keys: `hosts` (fail fraction), `fail` (failure window, ms),
    /// `repair` (repair delay range, ms, or `never`), `stragglers`
    /// (fraction), `slow` (factor), `slowstart` (onset window, ms),
    /// `slowdur` (duration range, ms, or `never`).
    ///
    /// Example: `hosts=0.25,fail=500..8000,repair=2000..5000,slow=0.4`.
    pub fn parse(input: &str) -> Result<FaultSpec, String> {
        fn num(key: &str, v: &str) -> Result<f64, String> {
            v.trim()
                .parse::<f64>()
                .map_err(|_| format!("--faults {key}: expected a number, got {v:?}"))
        }
        fn range(key: &str, v: &str) -> Result<(f64, f64), String> {
            let (lo, hi) = v
                .split_once("..")
                .ok_or_else(|| format!("--faults {key}: expected lo..hi, got {v:?}"))?;
            Ok((num(key, lo)?, num(key, hi)?))
        }
        let mut spec = FaultSpec::default();
        for part in input.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("--faults: expected key=value, got {part:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "hosts" => spec.host_fail_fraction = num(key, value)?,
                "fail" => spec.fail_window_ms = range(key, value)?,
                "repair" => {
                    spec.repair_after_ms = if value == "never" {
                        None
                    } else {
                        Some(range(key, value)?)
                    }
                }
                "stragglers" => spec.straggler_fraction = num(key, value)?,
                "slow" => spec.straggler_factor = num(key, value)?,
                "slowstart" => spec.straggler_window_ms = range(key, value)?,
                "slowdur" => {
                    spec.straggler_duration_ms = if value == "never" {
                        None
                    } else {
                        Some(range(key, value)?)
                    }
                }
                other => return Err(format!("--faults: unknown key {other:?}")),
            }
        }
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_plan_is_empty_and_valid() {
        let plan = FaultPlan::healthy();
        assert!(plan.is_empty());
        assert!(plan.validate(&[4, 4], 8).is_ok());
    }

    #[test]
    fn generate_is_deterministic() {
        let spec = FaultSpec::default();
        let a = FaultPlan::generate(&spec, 42, &[8, 8], 32);
        let b = FaultPlan::generate(&spec, 42, &[8, 8], 32);
        assert_eq!(a, b);
        let c = FaultPlan::generate(&spec, 43, &[8, 8], 32);
        assert_ne!(a, c, "different seeds produce different chaos");
        a.validate(&[8, 8], 32).expect("generated plans validate");
    }

    #[test]
    fn generate_respects_fractions_and_windows() {
        let spec = FaultSpec {
            host_fail_fraction: 1.0,
            straggler_fraction: 1.0,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(&spec, 7, &[4], 6);
        assert_eq!(plan.host_outages.len(), 4);
        assert_eq!(plan.vm_slowdowns.len(), 6);
        for o in &plan.host_outages {
            let t = o.fail_at.as_millis();
            assert!((500.0..=10_000.0).contains(&t));
            let r = o.repair_at.expect("default spec repairs");
            assert!(r > o.fail_at);
        }
        for s in &plan.vm_slowdowns {
            assert_eq!(s.factor, 0.5);
            assert!(s.until.expect("default spec recovers") > s.from);
        }
        let none = FaultPlan::generate(
            &FaultSpec {
                host_fail_fraction: 0.0,
                straggler_fraction: 0.0,
                ..FaultSpec::default()
            },
            7,
            &[4],
            6,
        );
        assert!(none.is_empty());
    }

    #[test]
    fn validate_rejects_bad_entries() {
        let mut plan = FaultPlan::healthy();
        plan.host_outages.push(HostOutage {
            datacenter: DatacenterId(0),
            host: HostId(9),
            fail_at: SimTime::new(10.0),
            repair_at: None,
        });
        assert!(plan.validate(&[4], 2).is_err(), "host out of range");

        let mut plan = FaultPlan::healthy();
        plan.host_outages.push(HostOutage {
            datacenter: DatacenterId(0),
            host: HostId(0),
            fail_at: SimTime::new(100.0),
            repair_at: Some(SimTime::new(50.0)),
        });
        assert!(plan.validate(&[4], 2).is_err(), "repair before failure");

        let mut plan = FaultPlan::healthy();
        plan.vm_slowdowns.push(VmSlowdown {
            vm: VmId(0),
            from: SimTime::new(0.0),
            factor: 1.5,
            until: None,
        });
        assert!(plan.validate(&[4], 2).is_err(), "factor above 1");

        let mut plan = FaultPlan::healthy();
        plan.vm_slowdowns.push(VmSlowdown {
            vm: VmId(5),
            from: SimTime::new(0.0),
            factor: 0.5,
            until: None,
        });
        assert!(plan.validate(&[4], 2).is_err(), "vm out of range");
    }

    #[test]
    fn spec_parse_roundtrip() {
        let spec =
            FaultSpec::parse("hosts=0.25, fail=500..8000, repair=2000..5000, slow=0.4").unwrap();
        assert_eq!(spec.host_fail_fraction, 0.25);
        assert_eq!(spec.fail_window_ms, (500.0, 8_000.0));
        assert_eq!(spec.repair_after_ms, Some((2_000.0, 5_000.0)));
        assert_eq!(spec.straggler_factor, 0.4);
        // Untouched keys keep their defaults.
        assert_eq!(
            spec.straggler_fraction,
            FaultSpec::default().straggler_fraction
        );

        let spec = FaultSpec::parse("repair=never,slowdur=never").unwrap();
        assert_eq!(spec.repair_after_ms, None);
        assert_eq!(spec.straggler_duration_ms, None);

        assert_eq!(FaultSpec::parse("").unwrap(), FaultSpec::default());
        assert!(FaultSpec::parse("hosts=2.0").is_err(), "fraction above 1");
        assert!(FaultSpec::parse("bogus=1").is_err());
        assert!(FaultSpec::parse("fail=10").is_err(), "not a range");
    }
}
