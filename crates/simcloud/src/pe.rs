//! Processing elements (cores).
//!
//! A PE is a single core with a MIPS rating. Hosts aggregate PEs; VMs
//! request a number of PEs at a MIPS rating and the allocation policy maps
//! them onto free host PEs.

/// Availability state of a processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeStatus {
    /// Available for allocation.
    Free,
    /// Allocated to a VM.
    Busy,
    /// Taken offline (failure injection / maintenance).
    Failed,
}

/// A single processing element of a host.
#[derive(Debug, Clone)]
pub struct Pe {
    mips: f64,
    status: PeStatus,
}

impl Pe {
    /// Creates a free PE with the given MIPS rating.
    ///
    /// Panics if `mips` is not strictly positive and finite.
    pub fn new(mips: f64) -> Self {
        assert!(
            mips.is_finite() && mips > 0.0,
            "PE MIPS must be positive and finite, got {mips}"
        );
        Pe {
            mips,
            status: PeStatus::Free,
        }
    }

    /// The MIPS rating of this PE.
    #[inline]
    pub fn mips(&self) -> f64 {
        self.mips
    }

    /// Current availability.
    #[inline]
    pub fn status(&self) -> PeStatus {
        self.status
    }

    /// True if the PE can be allocated.
    #[inline]
    pub fn is_free(&self) -> bool {
        self.status == PeStatus::Free
    }

    /// Marks the PE busy. Returns false if it was not free.
    pub fn allocate(&mut self) -> bool {
        if self.status == PeStatus::Free {
            self.status = PeStatus::Busy;
            true
        } else {
            false
        }
    }

    /// Releases a busy PE back to the free pool.
    pub fn release(&mut self) {
        if self.status == PeStatus::Busy {
            self.status = PeStatus::Free;
        }
    }

    /// Fails the PE (it can no longer be allocated until repaired).
    pub fn fail(&mut self) {
        self.status = PeStatus::Failed;
    }

    /// Repairs a failed PE.
    pub fn repair(&mut self) {
        if self.status == PeStatus::Failed {
            self.status = PeStatus::Free;
        }
    }
}

/// Summary of the PE pool of a host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PePoolStats {
    /// Total PEs regardless of state.
    pub total: usize,
    /// PEs currently free.
    pub free: usize,
    /// PEs currently allocated.
    pub busy: usize,
    /// PEs offline.
    pub failed: usize,
    /// Aggregate MIPS across non-failed PEs.
    pub usable_mips: f64,
}

/// Computes pool statistics over a PE slice.
pub fn pool_stats(pes: &[Pe]) -> PePoolStats {
    let mut stats = PePoolStats {
        total: pes.len(),
        free: 0,
        busy: 0,
        failed: 0,
        usable_mips: 0.0,
    };
    for pe in pes {
        match pe.status() {
            PeStatus::Free => stats.free += 1,
            PeStatus::Busy => stats.busy += 1,
            PeStatus::Failed => stats.failed += 1,
        }
        if pe.status() != PeStatus::Failed {
            stats.usable_mips += pe.mips();
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_release_cycle() {
        let mut pe = Pe::new(1000.0);
        assert!(pe.is_free());
        assert!(pe.allocate());
        assert!(!pe.allocate(), "double allocation must fail");
        assert_eq!(pe.status(), PeStatus::Busy);
        pe.release();
        assert!(pe.is_free());
    }

    #[test]
    fn failure_and_repair() {
        let mut pe = Pe::new(500.0);
        pe.fail();
        assert!(!pe.allocate());
        pe.release(); // no-op on failed
        assert_eq!(pe.status(), PeStatus::Failed);
        pe.repair();
        assert!(pe.allocate());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mips_rejected() {
        let _ = Pe::new(0.0);
    }

    #[test]
    fn pool_stats_counts() {
        let mut pes = vec![Pe::new(100.0), Pe::new(200.0), Pe::new(300.0)];
        pes[0].allocate();
        pes[2].fail();
        let s = pool_stats(&pes);
        assert_eq!(s.total, 3);
        assert_eq!(s.free, 1);
        assert_eq!(s.busy, 1);
        assert_eq!(s.failed, 1);
        assert_eq!(s.usable_mips, 300.0);
    }
}
