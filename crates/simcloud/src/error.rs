//! Error types for scenario construction and execution.

use std::fmt;

use crate::ids::{DatacenterId, VmId};

/// Errors produced while validating or running a simulation scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The scenario declared no datacenters.
    NoDatacenters,
    /// The scenario declared no VMs.
    NoVms,
    /// `vm_placement` length differs from the VM count.
    PlacementMismatch {
        /// Number of VMs declared.
        vms: usize,
        /// Number of placement entries supplied.
        placements: usize,
    },
    /// A placement referenced a datacenter that does not exist.
    UnknownDatacenter(DatacenterId),
    /// `assignment` length differs from the cloudlet count.
    AssignmentMismatch {
        /// Number of cloudlets declared.
        cloudlets: usize,
        /// Number of assignment entries supplied.
        assignments: usize,
    },
    /// An assignment referenced a VM that does not exist.
    UnknownVm(VmId),
    /// A VM or cloudlet spec failed validation.
    InvalidSpec {
        /// Human-readable description.
        what: String,
    },
    /// The kernel's runaway-event guard tripped before the queue drained.
    EventLimitExceeded {
        /// Events processed before the guard stopped the run.
        processed: u64,
    },
    /// Workflow dependencies contain a cycle (or reference a missing
    /// cloudlet), so some cloudlets could never be released.
    InvalidDependencies {
        /// Human-readable description.
        what: String,
    },
    /// The explicitly requested engine cannot run this scenario (e.g. the
    /// sharded replay engine with fault injection). Explicit requests fail
    /// loudly instead of silently running a different kernel.
    Unsupported {
        /// Human-readable description of the unsupported combination.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoDatacenters => write!(f, "scenario has no datacenters"),
            SimError::NoVms => write!(f, "scenario has no VMs"),
            SimError::PlacementMismatch { vms, placements } => write!(
                f,
                "vm_placement covers {placements} VMs but the scenario has {vms}"
            ),
            SimError::UnknownDatacenter(dc) => {
                write!(f, "placement references unknown datacenter {dc}")
            }
            SimError::AssignmentMismatch {
                cloudlets,
                assignments,
            } => write!(
                f,
                "assignment covers {assignments} cloudlets but the scenario has {cloudlets}"
            ),
            SimError::UnknownVm(vm) => write!(f, "assignment references unknown VM {vm}"),
            SimError::InvalidSpec { what } => write!(f, "invalid spec: {what}"),
            SimError::EventLimitExceeded { processed } => write!(
                f,
                "event limit exceeded after {processed} events (likely a scheduling loop)"
            ),
            SimError::InvalidDependencies { what } => {
                write!(f, "invalid workflow dependencies: {what}")
            }
            SimError::Unsupported { what } => write!(f, "unsupported engine request: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(SimError::NoDatacenters.to_string().contains("datacenters"));
        assert!(SimError::UnknownVm(VmId(3)).to_string().contains("vm3"));
        assert!(SimError::PlacementMismatch {
            vms: 2,
            placements: 1
        }
        .to_string()
        .contains("covers 1"));
        assert!(SimError::EventLimitExceeded { processed: 10 }
            .to_string()
            .contains("10"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(SimError::NoVms);
        assert_eq!(e.to_string(), "scenario has no VMs");
    }
}
