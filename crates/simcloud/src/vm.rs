//! Virtual machines.
//!
//! A VM is described by a [`VmSpec`] (the paper's Table III / Table V
//! fields) and carries runtime placement state once a datacenter accepts it.

use crate::ids::{DatacenterId, HostId, VmId};

/// Static description of a virtual machine, mirroring CloudSim's `Vm`.
///
/// Field names follow the paper's Table III:
/// `vmMips`, `vmSize`, `vmRam`, `vmBw`, `vmPesNumber`.
#[derive(Debug, Clone, PartialEq)]
pub struct VmSpec {
    /// Million instructions per second *per PE*.
    pub mips: f64,
    /// Image size in MB (storage the VM occupies on its host).
    pub size_mb: f64,
    /// RAM in MB.
    pub ram_mb: f64,
    /// Bandwidth in Mbps.
    pub bw_mbps: f64,
    /// Number of processing elements.
    pub pes: u32,
}

impl VmSpec {
    /// Creates a spec, validating every field.
    pub fn new(mips: f64, size_mb: f64, ram_mb: f64, bw_mbps: f64, pes: u32) -> Self {
        let spec = VmSpec {
            mips,
            size_mb,
            ram_mb,
            bw_mbps,
            pes,
        };
        spec.validate().expect("invalid VmSpec");
        spec
    }

    /// Checks all fields for physical plausibility.
    pub fn validate(&self) -> Result<(), String> {
        fn pos(name: &str, v: f64) -> Result<(), String> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!(
                    "VmSpec.{name} must be positive and finite, got {v}"
                ))
            }
        }
        pos("mips", self.mips)?;
        pos("size_mb", self.size_mb)?;
        pos("ram_mb", self.ram_mb)?;
        pos("bw_mbps", self.bw_mbps)?;
        if self.pes == 0 {
            return Err("VmSpec.pes must be at least 1".into());
        }
        Ok(())
    }

    /// Total compute capacity of the VM in MIPS (all PEs combined).
    #[inline]
    pub fn total_mips(&self) -> f64 {
        self.mips * f64::from(self.pes)
    }

    /// The paper's homogeneous-scenario VM (Table III).
    pub fn homogeneous_default() -> Self {
        VmSpec::new(1_000.0, 5_000.0, 512.0, 500.0, 1)
    }
}

impl Default for VmSpec {
    fn default() -> Self {
        Self::homogeneous_default()
    }
}

/// Lifecycle state of a VM inside the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VmStatus {
    /// Declared but not yet sent to a datacenter.
    #[default]
    Created,
    /// Creation request in flight.
    Requested,
    /// Running on a host.
    Active,
    /// Datacenter refused the creation (insufficient host capacity).
    Rejected,
    /// Shut down.
    Destroyed,
}

/// A VM instance: spec plus runtime placement.
#[derive(Debug, Clone)]
pub struct Vm {
    /// This VM's identity in the world arena.
    pub id: VmId,
    /// Static requirements.
    pub spec: VmSpec,
    /// Lifecycle state.
    pub status: VmStatus,
    /// Datacenter the VM was placed in (once `Active`).
    pub datacenter: Option<DatacenterId>,
    /// Host the VM was placed on (once `Active`).
    pub host: Option<HostId>,
    /// Current straggler factor in `(0, 1]`: the VM's effective per-PE
    /// rate is `rate_factor × spec.mips`. Written by the datacenter on
    /// fault injection; read by recovery-time reschedulers.
    pub rate_factor: f64,
}

impl Vm {
    /// Creates a fresh, unplaced VM.
    pub fn new(id: VmId, spec: VmSpec) -> Self {
        Vm {
            id,
            spec,
            status: VmStatus::Created,
            datacenter: None,
            host: None,
            rate_factor: 1.0,
        }
    }

    /// Effective per-PE rate under the current straggler factor.
    #[inline]
    pub fn effective_mips(&self) -> f64 {
        self.spec.mips * self.rate_factor
    }

    /// Records successful placement.
    pub fn place(&mut self, dc: DatacenterId, host: HostId) {
        self.datacenter = Some(dc);
        self.host = Some(host);
        self.status = VmStatus::Active;
    }

    /// Records rejection by the datacenter.
    pub fn reject(&mut self) {
        self.status = VmStatus::Rejected;
    }

    /// True when the VM can accept cloudlets.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.status == VmStatus::Active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_defaults() {
        let v = VmSpec::homogeneous_default();
        assert_eq!(v.mips, 1_000.0);
        assert_eq!(v.size_mb, 5_000.0);
        assert_eq!(v.ram_mb, 512.0);
        assert_eq!(v.bw_mbps, 500.0);
        assert_eq!(v.pes, 1);
        assert_eq!(v.total_mips(), 1_000.0);
    }

    #[test]
    fn total_mips_scales_with_pes() {
        let v = VmSpec::new(500.0, 1.0, 1.0, 1.0, 4);
        assert_eq!(v.total_mips(), 2_000.0);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        assert!(VmSpec {
            mips: -1.0,
            ..VmSpec::default()
        }
        .validate()
        .is_err());
        assert!(VmSpec {
            pes: 0,
            ..VmSpec::default()
        }
        .validate()
        .is_err());
        assert!(VmSpec {
            bw_mbps: f64::NAN,
            ..VmSpec::default()
        }
        .validate()
        .is_err());
        assert!(VmSpec::default().validate().is_ok());
    }

    #[test]
    fn lifecycle() {
        let mut vm = Vm::new(VmId(0), VmSpec::default());
        assert!(!vm.is_active());
        vm.place(DatacenterId(1), HostId(2));
        assert!(vm.is_active());
        assert_eq!(vm.datacenter, Some(DatacenterId(1)));
        assert_eq!(vm.host, Some(HostId(2)));
        let mut vm2 = Vm::new(VmId(1), VmSpec::default());
        vm2.reject();
        assert_eq!(vm2.status, VmStatus::Rejected);
        assert!(!vm2.is_active());
    }
}
