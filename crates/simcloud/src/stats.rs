//! Simulation outcomes and the paper's evaluation metrics.
//!
//! [`SimulationOutcome`] is the data the paper's figures are computed from:
//! one record per cloudlet plus run-level counters. The metric definitions
//! follow Section VI-C: simulation time (Eq. 12), degree of time imbalance
//! (Eq. 13) and processing cost (Section VI-C-4).

use crate::cloudlet::{Cloudlet, CloudletStatus};
use crate::ids::{CloudletId, VmId};
use crate::time::SimTime;

/// Final per-cloudlet execution record.
#[derive(Debug, Clone)]
pub struct CloudletRecord {
    /// Which cloudlet this is.
    pub id: CloudletId,
    /// VM it ran on (None if it failed before placement).
    pub vm: Option<VmId>,
    /// Submission time.
    pub submit: Option<SimTime>,
    /// Execution start.
    pub start: Option<SimTime>,
    /// Execution finish.
    pub finish: Option<SimTime>,
    /// Execution span in milliseconds (finish − start).
    pub execution_ms: Option<f64>,
    /// Accrued processing cost.
    pub cost: f64,
    /// Final status.
    pub status: CloudletStatus,
    /// SLA result: `Some(true/false)` for deadline-carrying cloudlets,
    /// `None` for best-effort ones.
    pub met_deadline: Option<bool>,
}

impl From<&Cloudlet> for CloudletRecord {
    fn from(cl: &Cloudlet) -> Self {
        CloudletRecord {
            id: cl.id,
            vm: cl.vm,
            submit: cl.submit_time,
            start: cl.start_time,
            finish: cl.finish_time,
            execution_ms: cl.execution_time().map(|t| t.as_millis()),
            cost: cl.cost,
            status: cl.status,
            met_deadline: cl.met_deadline(),
        }
    }
}

/// Everything measured from one simulation run.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// One record per cloudlet, in cloudlet-id order.
    pub records: Vec<CloudletRecord>,
    /// Final simulated clock.
    pub end_time: SimTime,
    /// Kernel events processed.
    pub events_processed: u64,
    /// VMs successfully created.
    pub vms_created: usize,
    /// VMs refused by their datacenter.
    pub vms_rejected: usize,
    /// Cloudlets that never ran.
    pub cloudlets_failed: usize,
    /// Which engine actually executed the run (a sharded request may fall
    /// back to sequential for ineligible scenarios).
    pub engine: crate::simulation::EngineKind,
}

impl SimulationOutcome {
    /// Cloudlets that finished successfully.
    pub fn finished(&self) -> impl Iterator<Item = &CloudletRecord> {
        self.records
            .iter()
            .filter(|r| r.status == CloudletStatus::Finished)
    }

    /// Number of finished cloudlets.
    pub fn finished_count(&self) -> usize {
        self.finished().count()
    }

    /// The paper's Eq. 12: `T_sim = T_maxFinish − T_minStart`, in ms.
    ///
    /// `None` when no cloudlet finished.
    pub fn simulation_time_ms(&self) -> Option<f64> {
        let mut min_start: Option<f64> = None;
        let mut max_finish: Option<f64> = None;
        for r in self.finished() {
            if let (Some(s), Some(f)) = (r.start, r.finish) {
                let s = s.as_millis();
                let f = f.as_millis();
                min_start = Some(min_start.map_or(s, |m| m.min(s)));
                max_finish = Some(max_finish.map_or(f, |m| m.max(f)));
            }
        }
        Some(max_finish? - min_start?)
    }

    /// The paper's Eq. 13: `T_im = (T_max − T_min) / T_avg` over cloudlet
    /// execution times.
    ///
    /// `None` when no cloudlet finished or all execution times are zero.
    pub fn time_imbalance(&self) -> Option<f64> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in self.finished() {
            let e = r.execution_ms?;
            min = min.min(e);
            max = max.max(e);
            sum += e;
            n += 1;
        }
        if n == 0 || sum == 0.0 {
            return None;
        }
        let avg = sum / n as f64;
        Some((max - min) / avg)
    }

    /// Eq. 13 computed over *turnaround* times (finish − submit) instead
    /// of execution times. With batch submission this measures the spread
    /// of completion, which penalizes queueing on overloaded VMs.
    pub fn turnaround_imbalance(&self) -> Option<f64> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in self.finished() {
            let (s, f) = (r.submit?, r.finish?);
            let t = f.saturating_sub(s).as_millis();
            min = min.min(t);
            max = max.max(t);
            sum += t;
            n += 1;
        }
        if n == 0 || sum == 0.0 {
            return None;
        }
        Some((max - min) / (sum / n as f64))
    }

    /// Total processing cost over all finished cloudlets (Fig. 6d's y-axis).
    pub fn total_cost(&self) -> f64 {
        self.finished().map(|r| r.cost).sum()
    }

    /// Mean processing cost per finished cloudlet.
    pub fn mean_cost(&self) -> Option<f64> {
        let n = self.finished_count();
        (n > 0).then(|| self.total_cost() / n as f64)
    }

    /// Mean execution time over finished cloudlets, in ms.
    pub fn mean_execution_ms(&self) -> Option<f64> {
        let (sum, n) = self
            .finished()
            .filter_map(|r| r.execution_ms)
            .fold((0.0, 0usize), |(s, n), e| (s + e, n + 1));
        (n > 0).then(|| sum / n as f64)
    }

    /// Number of deadline-carrying cloudlets that missed their SLA
    /// (including ones that failed outright).
    pub fn sla_violations(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.met_deadline == Some(false))
            .count()
    }

    /// Fraction of deadline-carrying cloudlets that met their SLA.
    /// `None` when no cloudlet carries a deadline.
    pub fn sla_attainment(&self) -> Option<f64> {
        let (met, total) = self
            .records
            .iter()
            .filter_map(|r| r.met_deadline)
            .fold((0usize, 0usize), |(m, t), ok| (m + usize::from(ok), t + 1));
        (total > 0).then(|| met as f64 / total as f64)
    }

    /// Per-VM busy time in ms: the sum of execution times of the
    /// cloudlets each VM finished. Under time-sharing, overlapping
    /// executions make this an *occupancy* figure that can exceed the
    /// wall window; see [`crate::energy`] for a clamped interpretation.
    pub fn per_vm_busy_ms(&self, vm_count: usize) -> Vec<f64> {
        let mut busy = vec![0.0f64; vm_count];
        for r in self.finished() {
            if let (Some(vm), Some(exec)) = (r.vm, r.execution_ms) {
                if vm.index() < vm_count {
                    busy[vm.index()] += exec;
                }
            }
        }
        busy
    }

    /// Per-VM finished-cloudlet counts (load-spread diagnostics).
    pub fn per_vm_counts(&self, vm_count: usize) -> Vec<usize> {
        let mut counts = vec![0usize; vm_count];
        for r in self.finished() {
            if let Some(vm) = r.vm {
                if vm.index() < vm_count {
                    counts[vm.index()] += 1;
                }
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u32, start: f64, finish: f64, cost: f64) -> CloudletRecord {
        CloudletRecord {
            id: CloudletId(id),
            vm: Some(VmId(id % 2)),
            submit: Some(SimTime::ZERO),
            start: Some(SimTime::new(start)),
            finish: Some(SimTime::new(finish)),
            execution_ms: Some(finish - start),
            cost,
            status: CloudletStatus::Finished,
            met_deadline: None,
        }
    }

    fn outcome(records: Vec<CloudletRecord>) -> SimulationOutcome {
        SimulationOutcome {
            records,
            end_time: SimTime::new(100.0),
            events_processed: 1,
            vms_created: 2,
            vms_rejected: 0,
            cloudlets_failed: 0,
            engine: crate::simulation::EngineKind::Sequential,
        }
    }

    #[test]
    fn eq12_simulation_time() {
        let o = outcome(vec![rec(0, 5.0, 20.0, 1.0), rec(1, 10.0, 50.0, 2.0)]);
        assert_eq!(o.simulation_time_ms(), Some(45.0));
    }

    #[test]
    fn eq13_imbalance() {
        // exec times 10 and 30 -> (30-10)/20 = 1.0
        let o = outcome(vec![rec(0, 0.0, 10.0, 0.0), rec(1, 0.0, 30.0, 0.0)]);
        assert!((o.time_imbalance().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfectly_balanced_run_has_zero_imbalance() {
        let o = outcome(vec![rec(0, 0.0, 10.0, 0.0), rec(1, 5.0, 15.0, 0.0)]);
        assert_eq!(o.time_imbalance(), Some(0.0));
    }

    #[test]
    fn cost_rollups() {
        let o = outcome(vec![rec(0, 0.0, 1.0, 3.0), rec(1, 0.0, 1.0, 5.0)]);
        assert_eq!(o.total_cost(), 8.0);
        assert_eq!(o.mean_cost(), Some(4.0));
    }

    #[test]
    fn unfinished_cloudlets_excluded() {
        let mut failed = rec(2, 0.0, 0.0, 99.0);
        failed.status = CloudletStatus::Failed;
        failed.execution_ms = None;
        let o = outcome(vec![rec(0, 0.0, 10.0, 1.0), failed]);
        assert_eq!(o.finished_count(), 1);
        assert_eq!(o.total_cost(), 1.0);
        assert_eq!(o.simulation_time_ms(), Some(10.0));
    }

    #[test]
    fn empty_outcome_yields_none_metrics() {
        let o = outcome(vec![]);
        assert_eq!(o.simulation_time_ms(), None);
        assert_eq!(o.time_imbalance(), None);
        assert_eq!(o.mean_cost(), None);
        assert_eq!(o.mean_execution_ms(), None);
        assert_eq!(o.total_cost(), 0.0);
    }

    #[test]
    fn per_vm_counts_spread() {
        let o = outcome(vec![
            rec(0, 0.0, 1.0, 0.0),
            rec(1, 0.0, 1.0, 0.0),
            rec(2, 0.0, 1.0, 0.0),
        ]);
        let counts = o.per_vm_counts(2);
        assert_eq!(counts, vec![2, 1]);
    }

    #[test]
    fn per_vm_busy_accumulates_execution() {
        // ids 0 and 2 land on vm0, id 1 on vm1 (rec uses id % 2).
        let o = outcome(vec![
            rec(0, 0.0, 10.0, 0.0),
            rec(1, 0.0, 30.0, 0.0),
            rec(2, 5.0, 15.0, 0.0),
        ]);
        let busy = o.per_vm_busy_ms(2);
        assert!((busy[0] - 20.0).abs() < 1e-12);
        assert!((busy[1] - 30.0).abs() < 1e-12);
    }

    #[test]
    fn sla_rollups() {
        let mut hit = rec(0, 0.0, 10.0, 0.0);
        hit.met_deadline = Some(true);
        let mut miss = rec(1, 0.0, 99.0, 0.0);
        miss.met_deadline = Some(false);
        let best_effort = rec(2, 0.0, 10.0, 0.0);
        let o = outcome(vec![hit, miss, best_effort]);
        assert_eq!(o.sla_violations(), 1);
        assert!((o.sla_attainment().unwrap() - 0.5).abs() < 1e-12);
        // No deadlines at all -> None.
        let o2 = outcome(vec![rec(0, 0.0, 1.0, 0.0)]);
        assert_eq!(o2.sla_attainment(), None);
        assert_eq!(o2.sla_violations(), 0);
    }
}
