//! Simulation outcomes and the paper's evaluation metrics.
//!
//! [`SimulationOutcome`] is the data the paper's figures are computed from:
//! one record per cloudlet plus run-level counters. The metric definitions
//! follow Section VI-C: simulation time (Eq. 12), degree of time imbalance
//! (Eq. 13) and processing cost (Section VI-C-4).
//!
//! Two retention modes exist ([`RecordMode`]): `Full` keeps the
//! per-cloudlet record vector; `Aggregate` folds every metric online into
//! an [`AggregateMetrics`] at outcome construction and drops the records,
//! cutting a run's retained memory from O(cloudlets) to O(VMs). Every
//! metric accessor answers identically (bit-for-bit) in both modes; the
//! equivalence suite in `crates/workload/tests` pins that contract.

use crate::cloudlet::{Cloudlet, CloudletStatus};
use crate::ids::{CloudletId, VmId};
use crate::time::SimTime;

/// How a run's per-cloudlet results are retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordMode {
    /// Keep one [`CloudletRecord`] per cloudlet (CSV export, diagnostics,
    /// SLA drill-downs). The default.
    #[default]
    Full,
    /// Fold the paper's metrics online and retain no per-cloudlet vector.
    Aggregate,
}

/// Run-level recovery counters accumulated while faults strike and the
/// broker retries orphaned work. All zeros on a fault-free run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResilienceCounters {
    /// Retry submissions performed (one per cloudlet per retry batch).
    pub retries: u64,
    /// Milliseconds of execution spent on attempts that later failed.
    pub wasted_work_ms: f64,
    /// Cloudlets that failed at least once but eventually finished.
    pub recovered: u64,
    /// Sum over recovered cloudlets of (completion − first failure), ms.
    pub recovery_time_ms: f64,
    /// Cloudlets permanently failed after exhausting their retry budget.
    pub abandoned: u64,
}

impl ResilienceCounters {
    /// Mean time-to-recovery over recovered cloudlets, in ms. `None`
    /// when nothing had to recover.
    pub fn mean_time_to_recovery_ms(&self) -> Option<f64> {
        (self.recovered > 0).then(|| self.recovery_time_ms / self.recovered as f64)
    }
}

/// Number of buckets in a [`WaitHistogram`].
const WAIT_BUCKETS: usize = 256;
/// Log-bucket resolution: buckets per octave (relative error ≈ 2^(1/8) ≈ 9%).
const WAIT_PER_OCTAVE: f64 = 8.0;
/// Lower edge of bucket 1 in ms; waits at or below this land in bucket 0.
const WAIT_MIN_MS: f64 = 1e-3;

/// Fixed log-bucketed histogram of cloudlet wait times (start − submit).
///
/// Both record modes answer wait quantiles through this same estimator so
/// the bit-identity contract between [`RecordMode::Full`] and
/// [`RecordMode::Aggregate`] extends to p50/p99: bucket insertion is
/// integer counting (order-independent) and the representative value of a
/// bucket is a pure function of its index. 256 buckets at 8 per octave
/// cover 1 µs to ~4.3 × 10^6 ms with ≈9% relative resolution; anything
/// below the floor reads as a zero wait, anything above clamps to the top
/// bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct WaitHistogram {
    counts: [u64; WAIT_BUCKETS],
    total: u64,
}

impl Default for WaitHistogram {
    fn default() -> Self {
        WaitHistogram {
            counts: [0; WAIT_BUCKETS],
            total: 0,
        }
    }
}

impl WaitHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(wait_ms: f64) -> usize {
        // NaN / negative / sub-floor waits all land in bucket 0 (zero wait).
        if wait_ms.is_nan() || wait_ms <= WAIT_MIN_MS {
            return 0;
        }
        let idx = ((wait_ms / WAIT_MIN_MS).log2() * WAIT_PER_OCTAVE).floor() as usize + 1;
        idx.min(WAIT_BUCKETS - 1)
    }

    /// Representative (geometric-midpoint) wait for bucket `idx`, in ms.
    fn value_of(idx: usize) -> f64 {
        if idx == 0 {
            return 0.0;
        }
        WAIT_MIN_MS * ((idx as f64 - 0.5) / WAIT_PER_OCTAVE).exp2()
    }

    /// Records one wait observation.
    pub fn record(&mut self, wait_ms: f64) {
        self.counts[Self::bucket_of(wait_ms)] += 1;
        self.total += 1;
    }

    /// Number of recorded observations.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The `q`-quantile (0 < q ≤ 1) as the representative value of the
    /// bucket holding the ⌈q·n⌉-th smallest observation. `None` on an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::value_of(i));
            }
        }
        None
    }
}

/// Per-VM usage summary: busy time and finished-cloudlet count, computed
/// in one pass over the records (or read straight off the aggregate).
#[derive(Debug, Clone, PartialEq)]
pub struct VmUsage {
    /// Sum of execution times of the cloudlets each VM finished, in ms.
    pub busy_ms: Vec<f64>,
    /// Finished-cloudlet count per VM.
    pub counts: Vec<usize>,
}

/// The paper's metrics folded online, one record at a time, in cloudlet-id
/// order — the same order the [`SimulationOutcome`] accessors scan the
/// record vector, so every min/max/sum lands on identical bits.
#[derive(Debug, Clone)]
pub struct AggregateMetrics {
    finished: usize,
    failed: usize,
    observed: usize,
    min_start: Option<f64>,
    max_finish: Option<f64>,
    exec_min: f64,
    exec_max: f64,
    exec_sum: f64,
    exec_n: usize,
    /// A finished cloudlet lacked `execution_ms` (makes Eq. 13 undefined,
    /// matching the record path's early `None`).
    exec_missing: bool,
    turn_min: f64,
    turn_max: f64,
    turn_sum: f64,
    turn_n: usize,
    turn_missing: bool,
    total_cost: f64,
    sla_met: usize,
    sla_total: usize,
    min_submit: Option<f64>,
    wait_hist: WaitHistogram,
    wait_sum: f64,
    wait_max: f64,
    wait_n: usize,
    per_vm_busy_ms: Vec<f64>,
    per_vm_counts: Vec<usize>,
}

impl AggregateMetrics {
    /// An empty fold over a fleet of `vm_count` VMs.
    pub fn new(vm_count: usize) -> Self {
        AggregateMetrics {
            finished: 0,
            failed: 0,
            observed: 0,
            min_start: None,
            max_finish: None,
            exec_min: f64::INFINITY,
            exec_max: f64::NEG_INFINITY,
            exec_sum: 0.0,
            exec_n: 0,
            exec_missing: false,
            turn_min: f64::INFINITY,
            turn_max: f64::NEG_INFINITY,
            turn_sum: 0.0,
            turn_n: 0,
            turn_missing: false,
            total_cost: 0.0,
            sla_met: 0,
            sla_total: 0,
            min_submit: None,
            wait_hist: WaitHistogram::new(),
            wait_sum: 0.0,
            wait_max: f64::NEG_INFINITY,
            wait_n: 0,
            per_vm_busy_ms: vec![0.0; vm_count],
            per_vm_counts: vec![0; vm_count],
        }
    }

    /// Folds one cloudlet's final state. Must be called in cloudlet-id
    /// order to keep the floating-point fold bit-identical to a scan of
    /// the full record vector.
    pub fn observe(&mut self, r: &CloudletRecord) {
        self.observed += 1;
        if let Some(ok) = r.met_deadline {
            self.sla_total += 1;
            self.sla_met += usize::from(ok);
        }
        if r.status == CloudletStatus::Failed {
            self.failed += 1;
        }
        if r.status != CloudletStatus::Finished {
            return;
        }
        self.finished += 1;
        if let (Some(s), Some(f)) = (r.start, r.finish) {
            let s = s.as_millis();
            let f = f.as_millis();
            self.min_start = Some(self.min_start.map_or(s, |m| m.min(s)));
            self.max_finish = Some(self.max_finish.map_or(f, |m| m.max(f)));
        }
        match r.execution_ms {
            Some(e) => {
                self.exec_min = self.exec_min.min(e);
                self.exec_max = self.exec_max.max(e);
                self.exec_sum += e;
                self.exec_n += 1;
            }
            None => self.exec_missing = true,
        }
        match (r.submit, r.finish) {
            (Some(s), Some(f)) => {
                let t = f.saturating_sub(s).as_millis();
                self.turn_min = self.turn_min.min(t);
                self.turn_max = self.turn_max.max(t);
                self.turn_sum += t;
                self.turn_n += 1;
            }
            _ => self.turn_missing = true,
        }
        if let Some(s) = r.submit {
            let s = s.as_millis();
            self.min_submit = Some(self.min_submit.map_or(s, |m| m.min(s)));
        }
        if let (Some(sub), Some(st)) = (r.submit, r.start) {
            let w = st.saturating_sub(sub).as_millis();
            self.wait_hist.record(w);
            self.wait_sum += w;
            self.wait_max = self.wait_max.max(w);
            self.wait_n += 1;
        }
        self.total_cost += r.cost;
        if let Some(vm) = r.vm {
            if vm.index() < self.per_vm_counts.len() {
                self.per_vm_counts[vm.index()] += 1;
                if let Some(exec) = r.execution_ms {
                    self.per_vm_busy_ms[vm.index()] += exec;
                }
            }
        }
    }
}

/// Final per-cloudlet execution record.
#[derive(Debug, Clone)]
pub struct CloudletRecord {
    /// Which cloudlet this is.
    pub id: CloudletId,
    /// VM it ran on (None if it failed before placement).
    pub vm: Option<VmId>,
    /// Submission time.
    pub submit: Option<SimTime>,
    /// Execution start.
    pub start: Option<SimTime>,
    /// Execution finish.
    pub finish: Option<SimTime>,
    /// Execution span in milliseconds (finish − start).
    pub execution_ms: Option<f64>,
    /// Accrued processing cost.
    pub cost: f64,
    /// Final status.
    pub status: CloudletStatus,
    /// SLA result: `Some(true/false)` for deadline-carrying cloudlets,
    /// `None` for best-effort ones.
    pub met_deadline: Option<bool>,
}

impl From<&Cloudlet> for CloudletRecord {
    fn from(cl: &Cloudlet) -> Self {
        CloudletRecord {
            id: cl.id,
            vm: cl.vm,
            submit: cl.submit_time,
            start: cl.start_time,
            finish: cl.finish_time,
            execution_ms: cl.execution_time().map(|t| t.as_millis()),
            cost: cl.cost,
            status: cl.status,
            met_deadline: cl.met_deadline(),
        }
    }
}

/// Everything measured from one simulation run.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// One record per cloudlet, in cloudlet-id order. Empty when the run
    /// was executed under [`RecordMode::Aggregate`].
    pub records: Vec<CloudletRecord>,
    /// Metrics folded online at outcome construction. `Some` exactly when
    /// the run used [`RecordMode::Aggregate`]; accessors read it first and
    /// fall back to scanning `records`.
    pub aggregate: Option<AggregateMetrics>,
    /// Final simulated clock.
    pub end_time: SimTime,
    /// Kernel events processed.
    pub events_processed: u64,
    /// VMs successfully created.
    pub vms_created: usize,
    /// VMs refused by their datacenter.
    pub vms_rejected: usize,
    /// Cloudlets that never ran.
    pub cloudlets_failed: usize,
    /// Recovery counters accumulated during the run (all zeros on a
    /// fault-free run).
    pub resilience: ResilienceCounters,
    /// Which engine actually executed the run.
    pub engine: crate::simulation::EngineKind,
    /// `Some` when the run executed on a different engine than the one
    /// requested (today: a sharded request with a workflow DAG runs on
    /// the sequential kernel). `None` when the requested engine ran.
    pub fallback: Option<crate::simulation::EngineFallback>,
}

impl SimulationOutcome {
    /// Cloudlets that finished successfully.
    pub fn finished(&self) -> impl Iterator<Item = &CloudletRecord> {
        self.records
            .iter()
            .filter(|r| r.status == CloudletStatus::Finished)
    }

    /// Number of finished cloudlets.
    pub fn finished_count(&self) -> usize {
        match &self.aggregate {
            Some(a) => a.finished,
            None => self.finished().count(),
        }
    }

    /// The paper's Eq. 12: `T_sim = T_maxFinish − T_minStart`, in ms.
    ///
    /// `None` when no cloudlet finished.
    pub fn simulation_time_ms(&self) -> Option<f64> {
        if let Some(a) = &self.aggregate {
            return Some(a.max_finish? - a.min_start?);
        }
        let mut min_start: Option<f64> = None;
        let mut max_finish: Option<f64> = None;
        for r in self.finished() {
            if let (Some(s), Some(f)) = (r.start, r.finish) {
                let s = s.as_millis();
                let f = f.as_millis();
                min_start = Some(min_start.map_or(s, |m| m.min(s)));
                max_finish = Some(max_finish.map_or(f, |m| m.max(f)));
            }
        }
        Some(max_finish? - min_start?)
    }

    /// The paper's Eq. 13: `T_im = (T_max − T_min) / T_avg` over cloudlet
    /// execution times.
    ///
    /// `None` when no cloudlet finished or all execution times are zero.
    pub fn time_imbalance(&self) -> Option<f64> {
        if let Some(a) = &self.aggregate {
            if a.exec_missing || a.exec_n == 0 || a.exec_sum == 0.0 {
                return None;
            }
            let avg = a.exec_sum / a.exec_n as f64;
            return Some((a.exec_max - a.exec_min) / avg);
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in self.finished() {
            let e = r.execution_ms?;
            min = min.min(e);
            max = max.max(e);
            sum += e;
            n += 1;
        }
        if n == 0 || sum == 0.0 {
            return None;
        }
        let avg = sum / n as f64;
        Some((max - min) / avg)
    }

    /// Eq. 13 computed over *turnaround* times (finish − submit) instead
    /// of execution times. With batch submission this measures the spread
    /// of completion, which penalizes queueing on overloaded VMs.
    pub fn turnaround_imbalance(&self) -> Option<f64> {
        if let Some(a) = &self.aggregate {
            if a.turn_missing || a.turn_n == 0 || a.turn_sum == 0.0 {
                return None;
            }
            return Some((a.turn_max - a.turn_min) / (a.turn_sum / a.turn_n as f64));
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in self.finished() {
            let (s, f) = (r.submit?, r.finish?);
            let t = f.saturating_sub(s).as_millis();
            min = min.min(t);
            max = max.max(t);
            sum += t;
            n += 1;
        }
        if n == 0 || sum == 0.0 {
            return None;
        }
        Some((max - min) / (sum / n as f64))
    }

    /// Total processing cost over all finished cloudlets (Fig. 6d's y-axis).
    pub fn total_cost(&self) -> f64 {
        match &self.aggregate {
            Some(a) => a.total_cost,
            None => self.finished().map(|r| r.cost).sum(),
        }
    }

    /// Mean processing cost per finished cloudlet.
    pub fn mean_cost(&self) -> Option<f64> {
        let n = self.finished_count();
        (n > 0).then(|| self.total_cost() / n as f64)
    }

    /// Mean execution time over finished cloudlets, in ms.
    pub fn mean_execution_ms(&self) -> Option<f64> {
        if let Some(a) = &self.aggregate {
            return (a.exec_n > 0).then(|| a.exec_sum / a.exec_n as f64);
        }
        let (sum, n) = self
            .finished()
            .filter_map(|r| r.execution_ms)
            .fold((0.0, 0usize), |(s, n), e| (s + e, n + 1));
        (n > 0).then(|| sum / n as f64)
    }

    /// Number of deadline-carrying cloudlets that missed their SLA
    /// (including ones that failed outright).
    pub fn sla_violations(&self) -> usize {
        match &self.aggregate {
            Some(a) => a.sla_total - a.sla_met,
            None => self
                .records
                .iter()
                .filter(|r| r.met_deadline == Some(false))
                .count(),
        }
    }

    /// Fraction of deadline-carrying cloudlets that met their SLA.
    /// `None` when no cloudlet carries a deadline.
    pub fn sla_attainment(&self) -> Option<f64> {
        if let Some(a) = &self.aggregate {
            return (a.sla_total > 0).then(|| a.sla_met as f64 / a.sla_total as f64);
        }
        let (met, total) = self
            .records
            .iter()
            .filter_map(|r| r.met_deadline)
            .fold((0usize, 0usize), |(m, t), ok| (m + usize::from(ok), t + 1));
        (total > 0).then(|| met as f64 / total as f64)
    }

    /// Cloudlets that ended the run in [`CloudletStatus::Failed`],
    /// answered identically in both record modes.
    pub fn failed_count(&self) -> usize {
        match &self.aggregate {
            Some(a) => a.failed,
            None => self
                .records
                .iter()
                .filter(|r| r.status == CloudletStatus::Failed)
                .count(),
        }
    }

    /// Cloudlets observed by the run (the workload size), answered
    /// identically in both record modes.
    pub fn observed_count(&self) -> usize {
        match &self.aggregate {
            Some(a) => a.observed,
            None => self.records.len(),
        }
    }

    /// Fraction of the workload that finished. `None` on an empty run.
    pub fn completion_ratio(&self) -> Option<f64> {
        let n = self.observed_count();
        (n > 0).then(|| self.finished_count() as f64 / n as f64)
    }

    /// Useful-work fraction: execution time banked by finished cloudlets
    /// over that plus the execution time lost to failed attempts. `1.0`
    /// on a fault-free run; `None` when nothing executed at all.
    pub fn goodput(&self) -> Option<f64> {
        let useful = match &self.aggregate {
            Some(a) => a.exec_sum,
            None => self.finished().filter_map(|r| r.execution_ms).sum(),
        };
        let total = useful + self.resilience.wasted_work_ms;
        (total > 0.0).then(|| useful / total)
    }

    /// Mean time-to-recovery in ms over cloudlets that failed at least
    /// once and eventually finished. `None` when nothing had to recover.
    pub fn mean_time_to_recovery_ms(&self) -> Option<f64> {
        self.resilience.mean_time_to_recovery_ms()
    }

    /// Per-VM busy time and finished-cloudlet counts in one pass over the
    /// records (the old `per_vm_busy_ms`/`per_vm_counts` pair each
    /// re-scanned the whole vector). VMs at index ≥ `vm_count` are
    /// ignored; indexes the run never touched stay zero.
    pub fn per_vm_usage(&self, vm_count: usize) -> VmUsage {
        if let Some(a) = &self.aggregate {
            let mut busy_ms = vec![0.0f64; vm_count];
            let mut counts = vec![0usize; vm_count];
            let n = vm_count.min(a.per_vm_busy_ms.len());
            busy_ms[..n].copy_from_slice(&a.per_vm_busy_ms[..n]);
            counts[..n].copy_from_slice(&a.per_vm_counts[..n]);
            return VmUsage { busy_ms, counts };
        }
        let mut busy_ms = vec![0.0f64; vm_count];
        let mut counts = vec![0usize; vm_count];
        for r in self.finished() {
            if let Some(vm) = r.vm {
                if vm.index() < vm_count {
                    counts[vm.index()] += 1;
                    if let Some(exec) = r.execution_ms {
                        busy_ms[vm.index()] += exec;
                    }
                }
            }
        }
        VmUsage { busy_ms, counts }
    }

    /// Per-VM busy time in ms: the sum of execution times of the
    /// cloudlets each VM finished. Under time-sharing, overlapping
    /// executions make this an *occupancy* figure that can exceed the
    /// wall window; see [`crate::energy`] for a clamped interpretation.
    pub fn per_vm_busy_ms(&self, vm_count: usize) -> Vec<f64> {
        self.per_vm_usage(vm_count).busy_ms
    }

    /// Per-VM finished-cloudlet counts (load-spread diagnostics).
    pub fn per_vm_counts(&self, vm_count: usize) -> Vec<usize> {
        self.per_vm_usage(vm_count).counts
    }

    /// The wait-time histogram (start − submit over finished cloudlets),
    /// rebuilt from the records in Full mode and read off the fold in
    /// Aggregate mode. Integer counting makes the two bit-identical.
    pub fn wait_histogram(&self) -> WaitHistogram {
        if let Some(a) = &self.aggregate {
            return a.wait_hist.clone();
        }
        let mut hist = WaitHistogram::new();
        for r in self.finished() {
            if let (Some(sub), Some(st)) = (r.submit, r.start) {
                hist.record(st.saturating_sub(sub).as_millis());
            }
        }
        hist
    }

    /// The `q`-quantile of cloudlet wait time (start − submit) in ms,
    /// estimated from the shared log-bucket histogram (≈9% relative
    /// resolution). `None` when no finished cloudlet carries both stamps.
    pub fn wait_quantile_ms(&self, q: f64) -> Option<f64> {
        if let Some(a) = &self.aggregate {
            return a.wait_hist.quantile(q);
        }
        self.wait_histogram().quantile(q)
    }

    /// Median queueing wait in ms (streaming-broker latency headline).
    pub fn wait_p50_ms(&self) -> Option<f64> {
        self.wait_quantile_ms(0.50)
    }

    /// 99th-percentile queueing wait in ms (tail-latency headline).
    pub fn wait_p99_ms(&self) -> Option<f64> {
        self.wait_quantile_ms(0.99)
    }

    /// Mean queueing wait in ms over finished cloudlets, exact (not
    /// histogram-estimated). `None` when nothing finished with stamps.
    pub fn mean_wait_ms(&self) -> Option<f64> {
        if let Some(a) = &self.aggregate {
            return (a.wait_n > 0).then(|| a.wait_sum / a.wait_n as f64);
        }
        let (sum, n) = self
            .finished()
            .filter_map(|r| Some((r.submit?, r.start?)))
            .fold((0.0, 0usize), |(s, n), (sub, st)| {
                (s + st.saturating_sub(sub).as_millis(), n + 1)
            });
        (n > 0).then(|| sum / n as f64)
    }

    /// Maximum queueing wait in ms over finished cloudlets, exact.
    pub fn max_wait_ms(&self) -> Option<f64> {
        if let Some(a) = &self.aggregate {
            return (a.wait_n > 0).then_some(a.wait_max);
        }
        let mut max = f64::NEG_INFINITY;
        let mut n = 0usize;
        for r in self.finished() {
            if let (Some(sub), Some(st)) = (r.submit, r.start) {
                max = max.max(st.saturating_sub(sub).as_millis());
                n += 1;
            }
        }
        (n > 0).then_some(max)
    }

    /// Earliest submission time over finished cloudlets, in ms. Opens the
    /// throughput window (arrival-anchored, unlike Eq. 12's `min_start`).
    pub fn min_submit_ms(&self) -> Option<f64> {
        if let Some(a) = &self.aggregate {
            return a.min_submit;
        }
        let mut min: Option<f64> = None;
        for r in self.finished() {
            if let Some(s) = r.submit {
                let s = s.as_millis();
                min = Some(min.map_or(s, |m| m.min(s)));
            }
        }
        min
    }

    /// Sustained throughput in finished cloudlets per second over the
    /// window from first submission to last finish. `None` when nothing
    /// finished or the window is degenerate (zero span).
    pub fn throughput_per_s(&self) -> Option<f64> {
        let window_ms = self.latest_finish_ms()? - self.min_submit_ms()?;
        (window_ms > 0.0).then(|| self.finished_count() as f64 / (window_ms / 1000.0))
    }

    /// Latest finish time over finished cloudlets, in ms. Mirrors the
    /// aggregate fold's guard (start AND finish present) bit-for-bit.
    fn latest_finish_ms(&self) -> Option<f64> {
        if let Some(a) = &self.aggregate {
            return a.max_finish;
        }
        let mut max: Option<f64> = None;
        for r in self.finished() {
            if let (Some(_), Some(f)) = (r.start, r.finish) {
                let f = f.as_millis();
                max = Some(max.map_or(f, |m| m.max(f)));
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u32, start: f64, finish: f64, cost: f64) -> CloudletRecord {
        CloudletRecord {
            id: CloudletId(id),
            vm: Some(VmId(id % 2)),
            submit: Some(SimTime::ZERO),
            start: Some(SimTime::new(start)),
            finish: Some(SimTime::new(finish)),
            execution_ms: Some(finish - start),
            cost,
            status: CloudletStatus::Finished,
            met_deadline: None,
        }
    }

    fn outcome(records: Vec<CloudletRecord>) -> SimulationOutcome {
        SimulationOutcome {
            records,
            aggregate: None,
            end_time: SimTime::new(100.0),
            events_processed: 1,
            vms_created: 2,
            vms_rejected: 0,
            cloudlets_failed: 0,
            resilience: ResilienceCounters::default(),
            engine: crate::simulation::EngineKind::Sequential,
            fallback: None,
        }
    }

    #[test]
    fn eq12_simulation_time() {
        let o = outcome(vec![rec(0, 5.0, 20.0, 1.0), rec(1, 10.0, 50.0, 2.0)]);
        assert_eq!(o.simulation_time_ms(), Some(45.0));
    }

    #[test]
    fn eq13_imbalance() {
        // exec times 10 and 30 -> (30-10)/20 = 1.0
        let o = outcome(vec![rec(0, 0.0, 10.0, 0.0), rec(1, 0.0, 30.0, 0.0)]);
        assert!((o.time_imbalance().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfectly_balanced_run_has_zero_imbalance() {
        let o = outcome(vec![rec(0, 0.0, 10.0, 0.0), rec(1, 5.0, 15.0, 0.0)]);
        assert_eq!(o.time_imbalance(), Some(0.0));
    }

    #[test]
    fn cost_rollups() {
        let o = outcome(vec![rec(0, 0.0, 1.0, 3.0), rec(1, 0.0, 1.0, 5.0)]);
        assert_eq!(o.total_cost(), 8.0);
        assert_eq!(o.mean_cost(), Some(4.0));
    }

    #[test]
    fn unfinished_cloudlets_excluded() {
        let mut failed = rec(2, 0.0, 0.0, 99.0);
        failed.status = CloudletStatus::Failed;
        failed.execution_ms = None;
        let o = outcome(vec![rec(0, 0.0, 10.0, 1.0), failed]);
        assert_eq!(o.finished_count(), 1);
        assert_eq!(o.total_cost(), 1.0);
        assert_eq!(o.simulation_time_ms(), Some(10.0));
    }

    #[test]
    fn empty_outcome_yields_none_metrics() {
        let o = outcome(vec![]);
        assert_eq!(o.simulation_time_ms(), None);
        assert_eq!(o.time_imbalance(), None);
        assert_eq!(o.mean_cost(), None);
        assert_eq!(o.mean_execution_ms(), None);
        assert_eq!(o.total_cost(), 0.0);
    }

    #[test]
    fn per_vm_counts_spread() {
        let o = outcome(vec![
            rec(0, 0.0, 1.0, 0.0),
            rec(1, 0.0, 1.0, 0.0),
            rec(2, 0.0, 1.0, 0.0),
        ]);
        let counts = o.per_vm_counts(2);
        assert_eq!(counts, vec![2, 1]);
    }

    #[test]
    fn per_vm_busy_accumulates_execution() {
        // ids 0 and 2 land on vm0, id 1 on vm1 (rec uses id % 2).
        let o = outcome(vec![
            rec(0, 0.0, 10.0, 0.0),
            rec(1, 0.0, 30.0, 0.0),
            rec(2, 5.0, 15.0, 0.0),
        ]);
        let busy = o.per_vm_busy_ms(2);
        assert!((busy[0] - 20.0).abs() < 1e-12);
        assert!((busy[1] - 30.0).abs() < 1e-12);
    }

    fn aggregate_of(records: &[CloudletRecord], vm_count: usize) -> SimulationOutcome {
        let mut agg = AggregateMetrics::new(vm_count);
        for r in records {
            agg.observe(r);
        }
        let mut o = outcome(Vec::new());
        o.aggregate = Some(agg);
        o
    }

    #[test]
    fn aggregate_fold_matches_record_scan_bitwise() {
        let mut failed = rec(3, 0.0, 0.0, 99.0);
        failed.status = CloudletStatus::Failed;
        failed.execution_ms = None;
        failed.met_deadline = Some(false);
        let mut hit = rec(4, 2.0, 9.5, 0.25);
        hit.met_deadline = Some(true);
        let records = vec![
            rec(0, 5.0, 20.0, 1.5),
            rec(1, 10.0, 50.0, 2.25),
            rec(2, 0.5, 13.0, 0.125),
            failed,
            hit,
        ];
        let full = outcome(records.clone());
        let agg = aggregate_of(&records, 2);

        assert_eq!(full.finished_count(), agg.finished_count());
        assert_eq!(
            full.simulation_time_ms().map(f64::to_bits),
            agg.simulation_time_ms().map(f64::to_bits)
        );
        assert_eq!(
            full.time_imbalance().map(f64::to_bits),
            agg.time_imbalance().map(f64::to_bits)
        );
        assert_eq!(
            full.turnaround_imbalance().map(f64::to_bits),
            agg.turnaround_imbalance().map(f64::to_bits)
        );
        assert_eq!(full.total_cost().to_bits(), agg.total_cost().to_bits());
        assert_eq!(
            full.mean_execution_ms().map(f64::to_bits),
            agg.mean_execution_ms().map(f64::to_bits)
        );
        assert_eq!(full.sla_violations(), agg.sla_violations());
        assert_eq!(full.sla_attainment(), agg.sla_attainment());
        assert_eq!(full.wait_histogram(), agg.wait_histogram());
        assert_eq!(
            full.wait_p50_ms().map(f64::to_bits),
            agg.wait_p50_ms().map(f64::to_bits)
        );
        assert_eq!(
            full.wait_p99_ms().map(f64::to_bits),
            agg.wait_p99_ms().map(f64::to_bits)
        );
        assert_eq!(
            full.mean_wait_ms().map(f64::to_bits),
            agg.mean_wait_ms().map(f64::to_bits)
        );
        assert_eq!(
            full.max_wait_ms().map(f64::to_bits),
            agg.max_wait_ms().map(f64::to_bits)
        );
        assert_eq!(
            full.throughput_per_s().map(f64::to_bits),
            agg.throughput_per_s().map(f64::to_bits)
        );
        assert_eq!(full.per_vm_usage(2), agg.per_vm_usage(2));
        // Asking for more (or fewer) VM slots than the fleet had behaves
        // like the record scan's index guard.
        assert_eq!(full.per_vm_usage(4), agg.per_vm_usage(4));
        assert_eq!(full.per_vm_usage(1), agg.per_vm_usage(1));
    }

    #[test]
    fn aggregate_missing_exec_on_finished_voids_imbalance() {
        let mut odd = rec(1, 0.0, 30.0, 0.0);
        odd.execution_ms = None;
        let records = vec![rec(0, 0.0, 10.0, 0.0), odd];
        let full = outcome(records.clone());
        let agg = aggregate_of(&records, 2);
        assert_eq!(full.time_imbalance(), None);
        assert_eq!(agg.time_imbalance(), None);
        // mean_execution_ms skips the hole instead (filter_map semantics).
        assert_eq!(full.mean_execution_ms(), agg.mean_execution_ms());
    }

    #[test]
    fn per_vm_usage_fuses_busy_and_counts() {
        let o = outcome(vec![
            rec(0, 0.0, 10.0, 0.0),
            rec(1, 0.0, 30.0, 0.0),
            rec(2, 5.0, 15.0, 0.0),
        ]);
        let usage = o.per_vm_usage(2);
        assert_eq!(usage.busy_ms, o.per_vm_busy_ms(2));
        assert_eq!(usage.counts, o.per_vm_counts(2));
        assert_eq!(usage.counts, vec![2, 1]);
    }

    #[test]
    fn failed_and_observed_counts_match_across_modes() {
        let mut failed = rec(2, 0.0, 0.0, 0.0);
        failed.status = CloudletStatus::Failed;
        failed.execution_ms = None;
        let records = vec![rec(0, 0.0, 10.0, 1.0), rec(1, 0.0, 20.0, 1.0), failed];
        let full = outcome(records.clone());
        let agg = aggregate_of(&records, 2);
        assert_eq!(full.failed_count(), 1);
        assert_eq!(agg.failed_count(), 1);
        assert_eq!(full.observed_count(), 3);
        assert_eq!(agg.observed_count(), 3);
        assert_eq!(
            full.completion_ratio().map(f64::to_bits),
            agg.completion_ratio().map(f64::to_bits)
        );
        assert!((full.completion_ratio().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn resilience_accessors() {
        let mut o = outcome(vec![rec(0, 0.0, 100.0, 0.0)]);
        assert_eq!(o.goodput(), Some(1.0), "fault-free run wastes nothing");
        assert_eq!(o.mean_time_to_recovery_ms(), None);
        o.resilience = ResilienceCounters {
            retries: 3,
            wasted_work_ms: 100.0,
            recovered: 2,
            recovery_time_ms: 500.0,
            abandoned: 1,
        };
        assert!((o.goodput().unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(o.mean_time_to_recovery_ms(), Some(250.0));
        // Aggregate mode answers goodput from the folded exec sum.
        let records = vec![rec(0, 0.0, 100.0, 0.0)];
        let mut agg = aggregate_of(&records, 2);
        agg.resilience = o.resilience;
        assert_eq!(
            agg.goodput().map(f64::to_bits),
            o.goodput().map(f64::to_bits)
        );
        // Empty run: no execution anywhere -> None.
        let empty = outcome(vec![]);
        assert_eq!(empty.goodput(), None);
    }

    #[test]
    fn wait_histogram_buckets_resolve_to_nine_percent() {
        let mut h = WaitHistogram::new();
        for w in [0.0, 1.0, 10.0, 100.0, 1000.0] {
            h.record(w);
        }
        assert_eq!(h.len(), 5);
        // p50 is the 3rd smallest (10 ms) up to one bucket of error.
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 10.0).abs() / 10.0 < 0.10, "p50 = {p50}");
        // p99 rounds up to the largest observation's bucket.
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 - 1000.0).abs() / 1000.0 < 0.10, "p99 = {p99}");
        // The zero bucket reads back as exactly zero wait.
        let mut z = WaitHistogram::new();
        z.record(0.0);
        assert_eq!(z.quantile(0.5), Some(0.0));
        assert_eq!(WaitHistogram::new().quantile(0.5), None);
    }

    #[test]
    fn wait_metrics_measure_submit_to_start() {
        // rec() submits at t=0, so wait == start.
        let records = vec![rec(0, 5.0, 20.0, 0.0), rec(1, 40.0, 50.0, 0.0)];
        let o = outcome(records.clone());
        assert_eq!(o.mean_wait_ms(), Some(22.5));
        assert_eq!(o.max_wait_ms(), Some(40.0));
        let p50 = o.wait_p50_ms().unwrap();
        assert!((p50 - 5.0).abs() / 5.0 < 0.10, "p50 = {p50}");
        // Aggregate mode answers identically.
        let agg = aggregate_of(&records, 2);
        assert_eq!(agg.mean_wait_ms(), Some(22.5));
        assert_eq!(agg.max_wait_ms(), Some(40.0));
        // No records at all -> None everywhere.
        let empty = outcome(vec![]);
        assert_eq!(empty.wait_p50_ms(), None);
        assert_eq!(empty.mean_wait_ms(), None);
        assert_eq!(empty.max_wait_ms(), None);
    }

    #[test]
    fn throughput_spans_submit_to_finish() {
        // Two cloudlets, submits at 0, last finish at 50 ms -> 40/s.
        let o = outcome(vec![rec(0, 5.0, 20.0, 0.0), rec(1, 10.0, 50.0, 0.0)]);
        assert!((o.throughput_per_s().unwrap() - 40.0).abs() < 1e-12);
        assert_eq!(o.min_submit_ms(), Some(0.0));
        // Degenerate window (submit == finish) -> None.
        let z = outcome(vec![rec(0, 0.0, 0.0, 0.0)]);
        assert_eq!(z.throughput_per_s(), None);
        assert_eq!(outcome(vec![]).throughput_per_s(), None);
    }

    #[test]
    fn sla_rollups() {
        let mut hit = rec(0, 0.0, 10.0, 0.0);
        hit.met_deadline = Some(true);
        let mut miss = rec(1, 0.0, 99.0, 0.0);
        miss.met_deadline = Some(false);
        let best_effort = rec(2, 0.0, 10.0, 0.0);
        let o = outcome(vec![hit, miss, best_effort]);
        assert_eq!(o.sla_violations(), 1);
        assert!((o.sla_attainment().unwrap() - 0.5).abs() < 1e-12);
        // No deadlines at all -> None.
        let o2 = outcome(vec![rec(0, 0.0, 1.0, 0.0)]);
        assert_eq!(o2.sla_attainment(), None);
        assert_eq!(o2.sla_violations(), 0);
    }
}
