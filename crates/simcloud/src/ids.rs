//! Typed identifiers for simulation objects.
//!
//! All simulation objects live in dense arenas owned by the [`crate::World`]
//! or by their parent entity, so identifiers are plain `u32` indices wrapped
//! in newtypes to keep host/VM/cloudlet/datacenter spaces from mixing.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense arena index.
            ///
            /// Panics if `idx` does not fit in `u32` — arenas larger than
            /// four billion entries are outside the simulator's design
            /// envelope.
            #[inline]
            pub fn from_index(idx: usize) -> Self {
                $name(u32::try_from(idx).expect("arena index exceeds u32"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a virtual machine within a simulation's VM arena.
    VmId,
    "vm"
);
id_type!(
    /// Identifies a cloudlet (task) within a simulation's cloudlet arena.
    CloudletId,
    "cl"
);
id_type!(
    /// Identifies a physical host within its datacenter.
    HostId,
    "host"
);
id_type!(
    /// Identifies a datacenter within a simulation.
    DatacenterId,
    "dc"
);
id_type!(
    /// Identifies a kernel entity (broker or datacenter actor).
    EntityId,
    "ent"
);
id_type!(
    /// Identifies a processing element (core) within a host.
    PeId,
    "pe"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let id = VmId::from_index(17);
        assert_eq!(id.index(), 17);
        assert_eq!(id, VmId(17));
    }

    #[test]
    fn formatting() {
        assert_eq!(format!("{}", CloudletId(3)), "cl3");
        assert_eq!(format!("{:?}", DatacenterId(1)), "dc1");
        assert_eq!(format!("{}", HostId(9)), "host9");
    }

    #[test]
    fn distinct_types_do_not_unify() {
        // Compile-time property; runtime check that values are independent.
        let v = VmId(1);
        let c = CloudletId(1);
        assert_eq!(v.index(), c.index());
    }

    #[test]
    fn ordering_follows_index() {
        assert!(VmId(2) < VmId(10));
        assert!(EntityId(0) < EntityId(1));
    }
}
