//! Processing-cost accounting.
//!
//! Implements the paper's Section VI-C-4 metric: each cloudlet is charged
//! for the CPU time it consumed plus the memory, storage and bandwidth its
//! VM holds, weighted by the task length (the `T_CLj` factor of Eq. 1).

use crate::characteristics::CostModel;
use crate::cloudlet::CloudletSpec;
use crate::vm::VmSpec;

/// Normalization constant for the Eq. 1 length factor.
///
/// Eq. 1 multiplies per-resource prices by the raw cloudlet length; we
/// divide the length by this constant so the resource term and the CPU-time
/// term have comparable magnitude at the paper's parameter ranges
/// (lengths 250–20000 MI, prices 0.001–0.05).
pub const LENGTH_NORM_MI: f64 = 1_000.0;

/// Cost of holding a VM's resources for one normalized task-length unit —
/// the `(Size_i + M_i + Bw_i)` factor of Eq. 1.
pub fn resource_rate(cost: &CostModel, vm: &VmSpec) -> f64 {
    cost.per_storage * vm.size_mb + cost.per_memory * vm.ram_mb + cost.per_bandwidth * vm.bw_mbps
}

/// Full processing cost of one cloudlet executed on `vm` in a datacenter
/// with the given `cost` model.
///
/// `cpu_seconds` is the simulated execution time. The resource term is
/// Eq. 1's `(Size + M + Bw) × T_CL` with the length normalized by
/// [`LENGTH_NORM_MI`].
pub fn cloudlet_cost(
    cost: &CostModel,
    vm: &VmSpec,
    cloudlet: &CloudletSpec,
    cpu_seconds: f64,
) -> f64 {
    debug_assert!(cpu_seconds >= 0.0);
    let resource_term = resource_rate(cost, vm) * (cloudlet.length_mi / LENGTH_NORM_MI);
    let cpu_term = cost.per_processing * cpu_seconds;
    resource_term + cpu_term
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_datacenter_costs_nothing() {
        let c = cloudlet_cost(
            &CostModel::free(),
            &VmSpec::default(),
            &CloudletSpec::default(),
            12.0,
        );
        assert_eq!(c, 0.0);
    }

    #[test]
    fn resource_rate_matches_eq1_terms() {
        let cost = CostModel::new(0.05, 0.004, 0.05, 3.0);
        let vm = VmSpec::new(1_000.0, 5_000.0, 512.0, 500.0, 1);
        // Size = 0.004*5000 = 20, M = 0.05*512 = 25.6, Bw = 0.05*500 = 25.
        assert!((resource_rate(&cost, &vm) - 70.6).abs() < 1e-9);
    }

    #[test]
    fn cost_scales_with_length_and_cpu_time() {
        let cost = CostModel::new(0.01, 0.001, 0.01, 3.0);
        let vm = VmSpec::default();
        let short = CloudletSpec::new(1_000.0, 0.0, 0.0, 1);
        let long = CloudletSpec::new(2_000.0, 0.0, 0.0, 1);
        let c_short = cloudlet_cost(&cost, &vm, &short, 1.0);
        let c_long = cloudlet_cost(&cost, &vm, &long, 2.0);
        assert!(c_long > c_short);
        // Resource term doubles with length, CPU term doubles with time.
        let rr = resource_rate(&cost, &vm);
        assert!((c_short - (rr * 1.0 + 3.0)).abs() < 1e-9);
        assert!((c_long - (rr * 2.0 + 6.0)).abs() < 1e-9);
    }

    #[test]
    fn cheaper_datacenter_yields_cheaper_cloudlet() {
        let cheap = CostModel::new(0.01, 0.001, 0.01, 3.0);
        let dear = CostModel::new(0.05, 0.004, 0.05, 3.0);
        let vm = VmSpec::default();
        let cl = CloudletSpec::new(5_000.0, 300.0, 300.0, 1);
        assert!(cloudlet_cost(&cheap, &vm, &cl, 5.0) < cloudlet_cost(&dear, &vm, &cl, 5.0));
    }
}
