//! Physical hosts.
//!
//! A host owns a pool of PEs and RAM/bandwidth/storage provisioners, and
//! admits VMs when every resource dimension fits — CloudSim's
//! `Host.isSuitableForVm` + `vmCreate` contract.

use crate::ids::{HostId, VmId};
use crate::pe::{pool_stats, Pe, PePoolStats};
use crate::provisioner::Provisioner;
use crate::vm::VmSpec;

/// Static sizing of a host.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpec {
    /// Number of PEs.
    pub pes: u32,
    /// MIPS per PE.
    pub mips_per_pe: f64,
    /// RAM in MB.
    pub ram_mb: f64,
    /// Bandwidth in Mbps.
    pub bw_mbps: f64,
    /// Storage in MB.
    pub storage_mb: f64,
}

impl HostSpec {
    /// Creates a host spec, validating every field.
    pub fn new(pes: u32, mips_per_pe: f64, ram_mb: f64, bw_mbps: f64, storage_mb: f64) -> Self {
        assert!(pes > 0, "host needs at least one PE");
        assert!(
            mips_per_pe.is_finite() && mips_per_pe > 0.0,
            "host PE MIPS must be positive"
        );
        for (n, v) in [("ram", ram_mb), ("bw", bw_mbps), ("storage", storage_mb)] {
            assert!(
                v.is_finite() && v > 0.0,
                "host {n} must be positive, got {v}"
            );
        }
        HostSpec {
            pes,
            mips_per_pe,
            ram_mb,
            bw_mbps,
            storage_mb,
        }
    }

    /// A host comfortably larger than the paper's largest VM: useful when a
    /// scenario wants one-VM-per-host placement without capacity effects.
    pub fn roomy_for(vm: &VmSpec, vms_per_host: u32) -> Self {
        let n = f64::from(vms_per_host);
        HostSpec::new(
            vm.pes * vms_per_host,
            vm.mips,
            vm.ram_mb * n,
            vm.bw_mbps * n,
            vm.size_mb * n,
        )
    }
}

/// A physical machine hosting VMs.
#[derive(Debug, Clone)]
pub struct Host {
    /// Identity within the owning datacenter.
    pub id: HostId,
    spec: HostSpec,
    pes: Vec<Pe>,
    ram: Provisioner,
    bw: Provisioner,
    storage: Provisioner,
    /// VMs currently placed here, with the number of PEs each holds.
    vms: Vec<(VmId, u32)>,
}

impl Host {
    /// Creates an empty host from a spec.
    pub fn new(id: HostId, spec: HostSpec) -> Self {
        let pes = (0..spec.pes).map(|_| Pe::new(spec.mips_per_pe)).collect();
        Host {
            id,
            ram: Provisioner::new("ram", spec.ram_mb),
            bw: Provisioner::new("bw", spec.bw_mbps),
            storage: Provisioner::new("storage", spec.storage_mb),
            pes,
            spec,
            vms: Vec::new(),
        }
    }

    /// The host's static sizing.
    pub fn spec(&self) -> &HostSpec {
        &self.spec
    }

    /// PE pool statistics.
    pub fn pe_stats(&self) -> PePoolStats {
        pool_stats(&self.pes)
    }

    /// Number of free PEs.
    pub fn free_pes(&self) -> usize {
        self.pes.iter().filter(|p| p.is_free()).count()
    }

    /// Number of VMs currently placed here.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Free RAM in MB.
    pub fn available_ram(&self) -> f64 {
        self.ram.available()
    }

    /// Free bandwidth in Mbps.
    pub fn available_bw(&self) -> f64 {
        self.bw.available()
    }

    /// Free storage in MB.
    pub fn available_storage(&self) -> f64 {
        self.storage.available()
    }

    /// True if `vm` fits in every resource dimension right now.
    pub fn is_suitable_for(&self, vm: &VmSpec) -> bool {
        self.free_pes() >= vm.pes as usize
            && self.pes.iter().any(|p| p.mips() >= vm.mips)
            && self.ram.available() + 1e-9 >= vm.ram_mb
            && self.bw.available() + 1e-9 >= vm.bw_mbps
            && self.storage.available() + 1e-9 >= vm.size_mb
    }

    /// Attempts to place `vm_id` with requirements `vm`. All-or-nothing.
    pub fn allocate_vm(&mut self, vm_id: VmId, vm: &VmSpec) -> bool {
        if !self.is_suitable_for(vm) {
            return false;
        }
        if !self.ram.allocate(vm_id, vm.ram_mb) {
            return false;
        }
        if !self.bw.allocate(vm_id, vm.bw_mbps) {
            self.ram.release(vm_id);
            return false;
        }
        if !self.storage.allocate(vm_id, vm.size_mb) {
            self.ram.release(vm_id);
            self.bw.release(vm_id);
            return false;
        }
        let mut granted = 0u32;
        for pe in self.pes.iter_mut() {
            if granted == vm.pes {
                break;
            }
            if pe.is_free() && pe.allocate() {
                granted += 1;
            }
        }
        debug_assert_eq!(granted, vm.pes, "is_suitable_for guaranteed free PEs");
        self.vms.push((vm_id, granted));
        true
    }

    /// Releases everything `vm_id` holds on this host.
    pub fn release_vm(&mut self, vm_id: VmId) {
        self.ram.release(vm_id);
        self.bw.release(vm_id);
        self.storage.release(vm_id);
        if let Some(pos) = self.vms.iter().position(|(v, _)| *v == vm_id) {
            let (_, pes_held) = self.vms.swap_remove(pos);
            let mut to_free = pes_held;
            for pe in self.pes.iter_mut() {
                if to_free == 0 {
                    break;
                }
                if !pe.is_free() {
                    pe.release();
                    to_free -= 1;
                }
            }
        }
    }

    /// Ids of VMs placed on this host.
    pub fn vm_ids(&self) -> impl Iterator<Item = VmId> + '_ {
        self.vms.iter().map(|(v, _)| *v)
    }

    /// Takes the host offline: all PEs fail, all VM placements are wiped,
    /// and the resident VM ids are returned so the caller can destroy
    /// them. The host refuses new VMs until repaired.
    pub fn fail(&mut self) -> Vec<VmId> {
        for pe in &mut self.pes {
            pe.fail();
        }
        let victims: Vec<VmId> = self.vms.drain(..).map(|(v, _)| v).collect();
        for vm in &victims {
            self.ram.release(*vm);
            self.bw.release(*vm);
            self.storage.release(*vm);
        }
        victims
    }

    /// True when every PE has failed (the host is down).
    pub fn is_failed(&self) -> bool {
        self.pes
            .iter()
            .all(|p| p.status() == crate::pe::PeStatus::Failed)
    }

    /// Brings a failed host back online: every failed PE returns to the
    /// free pool. [`Host::fail`] already released all provisions, so the
    /// host comes back empty and immediately re-admittable.
    pub fn repair(&mut self) {
        for pe in &mut self.pes {
            pe.repair();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> Host {
        Host::new(
            HostId(0),
            HostSpec::new(4, 1_000.0, 2_048.0, 2_000.0, 20_000.0),
        )
    }

    #[test]
    fn admits_fitting_vm() {
        let mut h = host();
        let vm = VmSpec::new(1_000.0, 5_000.0, 512.0, 500.0, 1);
        assert!(h.is_suitable_for(&vm));
        assert!(h.allocate_vm(VmId(0), &vm));
        assert_eq!(h.vm_count(), 1);
        assert_eq!(h.free_pes(), 3);
        assert_eq!(h.available_ram(), 1_536.0);
    }

    #[test]
    fn rejects_when_any_dimension_short() {
        let mut h = host();
        // Too much RAM.
        assert!(!h.is_suitable_for(&VmSpec::new(100.0, 1.0, 4_096.0, 1.0, 1)));
        // Too many PEs.
        assert!(!h.is_suitable_for(&VmSpec::new(100.0, 1.0, 1.0, 1.0, 8)));
        // PE MIPS too low for the VM's per-PE demand.
        assert!(!h.is_suitable_for(&VmSpec::new(2_000.0, 1.0, 1.0, 1.0, 1)));
        // Storage exhaustion after placements.
        let vm = VmSpec::new(500.0, 10_000.0, 100.0, 100.0, 1);
        assert!(h.allocate_vm(VmId(0), &vm));
        assert!(h.allocate_vm(VmId(1), &vm));
        assert!(!h.allocate_vm(VmId(2), &vm), "storage is now full");
    }

    #[test]
    fn release_restores_capacity() {
        let mut h = host();
        let vm = VmSpec::new(1_000.0, 5_000.0, 512.0, 500.0, 2);
        assert!(h.allocate_vm(VmId(0), &vm));
        assert_eq!(h.free_pes(), 2);
        h.release_vm(VmId(0));
        assert_eq!(h.free_pes(), 4);
        assert_eq!(h.vm_count(), 0);
        assert_eq!(h.available_ram(), 2_048.0);
        assert_eq!(h.available_storage(), 20_000.0);
        // Can place again.
        assert!(h.allocate_vm(VmId(1), &vm));
    }

    #[test]
    fn pe_stats_reflect_allocations() {
        let mut h = host();
        let vm = VmSpec::new(1_000.0, 100.0, 100.0, 100.0, 3);
        assert!(h.allocate_vm(VmId(0), &vm));
        let s = h.pe_stats();
        assert_eq!(s.busy, 3);
        assert_eq!(s.free, 1);
        assert_eq!(s.usable_mips, 4_000.0);
    }

    #[test]
    fn failed_host_evicts_and_refuses() {
        let mut h = host();
        let vm = VmSpec::new(1_000.0, 100.0, 100.0, 100.0, 1);
        assert!(h.allocate_vm(VmId(0), &vm));
        assert!(h.allocate_vm(VmId(1), &vm));
        let victims = h.fail();
        assert_eq!(victims, vec![VmId(0), VmId(1)]);
        assert!(h.is_failed());
        assert_eq!(h.vm_count(), 0);
        assert!(!h.is_suitable_for(&vm), "a failed host admits nothing");
        assert!(!h.allocate_vm(VmId(2), &vm));
    }

    #[test]
    fn repaired_host_readmits_vms() {
        let mut h = host();
        let vm = VmSpec::new(1_000.0, 100.0, 100.0, 100.0, 1);
        assert!(h.allocate_vm(VmId(0), &vm));
        h.fail();
        assert!(h.is_failed());
        h.repair();
        assert!(!h.is_failed());
        assert_eq!(h.free_pes(), 4, "repair frees every PE");
        assert_eq!(h.available_ram(), 2_048.0, "fail released all provisions");
        assert!(h.allocate_vm(VmId(1), &vm), "repaired host admits again");
    }

    #[test]
    fn roomy_for_fits_exactly_n_vms() {
        let vm = VmSpec::homogeneous_default();
        let spec = HostSpec::roomy_for(&vm, 3);
        let mut h = Host::new(HostId(1), spec);
        for i in 0..3 {
            assert!(h.allocate_vm(VmId(i), &vm), "vm {i} must fit");
        }
        assert!(!h.allocate_vm(VmId(3), &vm));
        assert_eq!(h.vm_ids().count(), 3);
    }
}
