//! The datacenter entity.
//!
//! A datacenter owns hosts, places VMs on them through its allocation
//! policy, executes cloudlets through per-VM cloudlet schedulers, accounts
//! processing cost, and reports completions back to the broker.

use crate::characteristics::DatacenterCharacteristics;
use crate::cloudlet::CloudletStatus;
use crate::cloudlet_sched::{CloudletScheduler, RunningCloudlet, SchedulerKind, Tick};
use crate::cost::cloudlet_cost;
use crate::event::{Event, ScheduledEvent};
use crate::host::{Host, HostSpec};
use crate::ids::{DatacenterId, EntityId, HostId, VmId};
use crate::kernel::{Context, Entity, World};
use crate::network::transfer_time;
use crate::time::SimTime;
use crate::vm_alloc::VmAllocationPolicy;

/// Construction-time description of a datacenter.
pub struct DatacenterBlueprint {
    /// Host fleet.
    pub hosts: Vec<HostSpec>,
    /// Characteristics, including the cost model.
    pub characteristics: DatacenterCharacteristics,
    /// VM-to-host placement policy.
    pub allocation: Box<dyn VmAllocationPolicy>,
    /// Per-VM cloudlet execution policy.
    pub scheduler: SchedulerKind,
    /// Failure injection: hosts that go down at the given times.
    pub failures: Vec<(HostId, SimTime)>,
}

impl DatacenterBlueprint {
    /// A blueprint with enough uniform hosts for `vm_count` copies of `vm`,
    /// packing `vms_per_host` on each — the standard scenario shape.
    pub fn sized_for(
        vm: &crate::vm::VmSpec,
        vm_count: usize,
        vms_per_host: u32,
        characteristics: DatacenterCharacteristics,
    ) -> Self {
        let host_spec = HostSpec::roomy_for(vm, vms_per_host);
        let host_count = vm_count.div_ceil(vms_per_host as usize).max(1);
        DatacenterBlueprint {
            hosts: vec![host_spec; host_count],
            characteristics,
            allocation: Box::new(crate::vm_alloc::FirstFit::default()),
            scheduler: SchedulerKind::SpaceShared,
            failures: Vec::new(),
        }
    }

    /// Adds a host failure at `time`.
    pub fn with_failure(mut self, host: HostId, time: SimTime) -> Self {
        self.failures.push((host, time));
        self
    }
}

/// The running datacenter entity.
pub struct Datacenter {
    entity: EntityId,
    /// Logical datacenter identity (used by cost/topology lookups).
    pub id: DatacenterId,
    characteristics: DatacenterCharacteristics,
    hosts: Vec<Host>,
    allocation: Box<dyn VmAllocationPolicy>,
    scheduler_kind: SchedulerKind,
    /// Per-VM schedulers, lazily grown, indexed by `VmId`.
    vm_scheds: Vec<Option<Box<dyn CloudletScheduler>>>,
    /// Cloudlets completed here (diagnostics).
    completed: u64,
    /// Broker address, learned from the first cloudlet submission; needed
    /// by self-sent `VmTick` timers to route completions.
    broker_hint: Option<EntityId>,
    /// Failure injection schedule, armed on `Start`.
    failures: Vec<(HostId, SimTime)>,
    /// Repair schedule from the fault plan, armed on `Start`.
    repairs: Vec<(HostId, SimTime)>,
    /// Straggler schedule from the fault plan, armed on `Start`:
    /// `(vm, time, factor)` with `factor == 1.0` restoring nominal speed.
    degrades: Vec<(VmId, SimTime, f64)>,
    /// VMs that died with each host (indexed by host), remembered so a
    /// repair can re-provision them.
    dead_vms: Vec<Vec<VmId>>,
    /// Current straggler factor per VM (lazily grown; missing = 1.0).
    vm_rate_factor: Vec<f64>,
}

impl Datacenter {
    /// Builds a datacenter from its blueprint.
    pub fn new(entity: EntityId, id: DatacenterId, blueprint: DatacenterBlueprint) -> Self {
        assert!(!blueprint.hosts.is_empty(), "datacenter needs hosts");
        let hosts = blueprint
            .hosts
            .into_iter()
            .enumerate()
            .map(|(i, spec)| Host::new(HostId::from_index(i), spec))
            .collect();
        Datacenter {
            entity,
            id,
            characteristics: blueprint.characteristics,
            hosts,
            allocation: blueprint.allocation,
            scheduler_kind: blueprint.scheduler,
            vm_scheds: Vec::new(),
            completed: 0,
            broker_hint: None,
            failures: blueprint.failures,
            repairs: Vec::new(),
            degrades: Vec::new(),
            dead_vms: Vec::new(),
            vm_rate_factor: Vec::new(),
        }
    }

    /// Installs the fault plan's repair and straggler schedules for this
    /// datacenter. Called by the simulation builder before the kernel
    /// starts; both lists are armed as self-addressed events on `Start`.
    pub fn arm_faults(
        &mut self,
        repairs: Vec<(HostId, SimTime)>,
        degrades: Vec<(VmId, SimTime, f64)>,
    ) {
        self.repairs = repairs;
        self.degrades = degrades;
    }

    /// The datacenter's characteristics (cost model etc.).
    pub fn characteristics(&self) -> &DatacenterCharacteristics {
        &self.characteristics
    }

    /// Cloudlets completed so far.
    pub fn completed_count(&self) -> u64 {
        self.completed
    }

    /// Host fleet view.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Lends `vm`'s scheduler to the epoch driver for a parallel replay
    /// segment; [`Datacenter::put_sched`] returns it afterwards.
    pub(crate) fn take_sched(&mut self, vm: VmId) -> Option<Box<dyn CloudletScheduler>> {
        self.vm_scheds.get_mut(vm.index()).and_then(Option::take)
    }

    /// Returns a scheduler lent out via [`Datacenter::take_sched`].
    pub(crate) fn put_sched(&mut self, vm: VmId, sched: Box<dyn CloudletScheduler>) {
        *Self::slot_mut(&mut self.vm_scheds, vm.index()) = Some(sched);
    }

    /// Pre-seeds the broker address. The kernel learns it from the first
    /// cloudlet submission; the epoch driver diverts submissions around
    /// the entity, so it installs the hint up front (observationally
    /// equivalent: the hint is only read once submissions have landed).
    pub(crate) fn set_broker_hint(&mut self, broker: EntityId) {
        self.broker_hint = Some(broker);
    }

    /// Folds completions harvested by a parallel replay segment into the
    /// diagnostics counter behind [`Datacenter::completed_count`].
    pub(crate) fn note_completed(&mut self, n: u64) {
        self.completed += n;
    }

    fn slot_mut<T: Default>(vec: &mut Vec<T>, idx: usize) -> &mut T {
        if vec.len() <= idx {
            vec.resize_with(idx + 1, T::default);
        }
        &mut vec[idx]
    }

    fn handle_vm_create(
        &mut self,
        world: &mut World,
        ctx: &mut Context<'_>,
        src: EntityId,
        vm_id: VmId,
    ) {
        let spec = world.vm(vm_id).spec.clone();
        let placed = self
            .allocation
            .select_host(&self.hosts, &spec)
            .and_then(|host_id| {
                let host = &mut self.hosts[host_id.index()];
                host.allocate_vm(vm_id, &spec).then_some(host_id)
            });
        let success = match placed {
            Some(host_id) => {
                world.vm_mut(vm_id).place(self.id, host_id);
                // A degrade that fired before creation still applies.
                let factor = self.rate_factor(vm_id);
                world.vm_mut(vm_id).rate_factor = factor;
                *Self::slot_mut(&mut self.vm_scheds, vm_id.index()) =
                    Some(self.scheduler_kind.build(spec.mips * factor, spec.pes));
                true
            }
            None => {
                world.vm_mut(vm_id).reject();
                false
            }
        };
        ctx.send(
            src,
            SimTime::ZERO,
            Event::VmCreateAck { vm: vm_id, success },
        );
    }

    fn apply_tick(
        &mut self,
        world: &mut World,
        ctx: &mut Context<'_>,
        vm_id: VmId,
        tick: Tick,
        broker: EntityId,
    ) {
        let now = ctx.now;
        for started in tick.started {
            let cl = world.cloudlet_mut(started);
            if cl.start_time.is_none() {
                cl.start_time = Some(now);
            }
            cl.status = CloudletStatus::Running;
        }
        if !tick.finished.is_empty() {
            let vm_spec = world.vm(vm_id).spec.clone();
            for finished in tick.finished {
                let cl = world.cloudlet_mut(finished);
                cl.finish_time = Some(now);
                cl.status = CloudletStatus::Finished;
                let cpu_seconds = cl.execution_time().map(|t| t.as_secs()).unwrap_or(0.0);
                cl.cost =
                    cloudlet_cost(&self.characteristics.cost, &vm_spec, &cl.spec, cpu_seconds);
                self.completed += 1;
                // The completion notification travels back after the output
                // file crosses the VM's bandwidth.
                let out_delay = transfer_time(cl.spec.output_size_mb, vm_spec.bw_mbps);
                ctx.send(
                    broker,
                    out_delay,
                    Event::CloudletReturn { cloudlet: finished },
                );
            }
        }
        // Arm the next completion timer; the queue coalesces per VM and
        // only keeps a new deadline if it beats the one already armed.
        if let Some(next) = tick.next_completion {
            ctx.send_vm_tick(vm_id, next.max(now));
        }
    }

    fn handle_cloudlet_submit(
        &mut self,
        world: &mut World,
        ctx: &mut Context<'_>,
        src: EntityId,
        cloudlet_id: crate::ids::CloudletId,
        vm_id: VmId,
    ) {
        self.broker_hint = Some(src);
        let (length, pes) = {
            let cl = world.cloudlet_mut(cloudlet_id);
            cl.status = CloudletStatus::Queued;
            cl.vm = Some(vm_id);
            (cl.spec.length_mi, cl.spec.pes)
        };
        let Some(sched) = self
            .vm_scheds
            .get_mut(vm_id.index())
            .and_then(Option::as_mut)
        else {
            // The VM was destroyed (host failure) after the broker bound
            // the cloudlet — a genuine race, not a programming error.
            assert_eq!(
                world.vm(vm_id).status,
                crate::vm::VmStatus::Destroyed,
                "cloudlet submitted to VM {vm_id} that was never hosted here"
            );
            world.cloudlet_mut(cloudlet_id).status = CloudletStatus::Failed;
            ctx.send(
                src,
                SimTime::ZERO,
                Event::CloudletFailed {
                    cloudlet: cloudlet_id,
                },
            );
            return;
        };
        let tick = sched.submit(ctx.now, RunningCloudlet::new(cloudlet_id, length, pes));
        self.apply_tick(world, ctx, vm_id, tick, src);
    }

    /// Same-time group of submissions for one VM: the scheduler settles
    /// once for the whole batch. Semantics per cloudlet mirror
    /// [`Self::handle_cloudlet_submit`] exactly.
    fn handle_cloudlet_submit_batch(
        &mut self,
        world: &mut World,
        ctx: &mut Context<'_>,
        src: EntityId,
        vm_id: VmId,
        cloudlets: Vec<crate::ids::CloudletId>,
    ) {
        self.broker_hint = Some(src);
        let alive = self
            .vm_scheds
            .get(vm_id.index())
            .is_some_and(Option::is_some);
        if !alive {
            // The VM died (host failure) while the batch was in flight —
            // fail each member just as the single-submit path would.
            assert_eq!(
                world.vm(vm_id).status,
                crate::vm::VmStatus::Destroyed,
                "cloudlet batch submitted to VM {vm_id} that was never hosted here"
            );
            for cloudlet in cloudlets {
                let cl = world.cloudlet_mut(cloudlet);
                cl.vm = Some(vm_id);
                cl.status = CloudletStatus::Failed;
                ctx.send(src, SimTime::ZERO, Event::CloudletFailed { cloudlet });
            }
            return;
        }
        let batch: Vec<RunningCloudlet> = cloudlets
            .into_iter()
            .map(|cloudlet| {
                let cl = world.cloudlet_mut(cloudlet);
                cl.status = CloudletStatus::Queued;
                cl.vm = Some(vm_id);
                RunningCloudlet::new(cloudlet, cl.spec.length_mi, cl.spec.pes)
            })
            .collect();
        let sched = self.vm_scheds[vm_id.index()]
            .as_mut()
            .expect("liveness checked above");
        let tick = sched.submit_many(ctx.now, batch);
        self.apply_tick(world, ctx, vm_id, tick, src);
    }

    /// Takes a host down: evicts its VMs, fails their queued/running
    /// cloudlets and reports each to the broker.
    fn handle_host_fail(&mut self, world: &mut World, ctx: &mut Context<'_>, host_id: HostId) {
        let Some(host) = self.hosts.get_mut(host_id.index()) else {
            return; // unknown host: injection config referenced a ghost
        };
        let victims = host.fail();
        // Remember who died here so a later repair can re-provision them.
        Self::slot_mut(&mut self.dead_vms, host_id.index()).extend(victims.iter().copied());
        for vm_id in victims {
            world.vm_mut(vm_id).status = crate::vm::VmStatus::Destroyed;
            let orphans = self
                .vm_scheds
                .get_mut(vm_id.index())
                .and_then(Option::take)
                .map(|mut sched| sched.drain())
                .unwrap_or_default();
            ctx.cancel_vm_tick(vm_id);
            for cloudlet in orphans {
                world.cloudlet_mut(cloudlet).status = CloudletStatus::Failed;
                if let Some(broker) = self.broker_hint {
                    ctx.send(broker, SimTime::ZERO, Event::CloudletFailed { cloudlet });
                }
            }
        }
    }

    /// Brings a repaired host back online and re-provisions the VMs that
    /// died with it, at their current straggler factor. Revived VMs come
    /// back empty; the broker's retry path discovers them simply by
    /// reading [`crate::vm::VmStatus::Active`] off the world.
    fn handle_host_repair(&mut self, world: &mut World, ctx: &mut Context<'_>, host_id: HostId) {
        let _ = ctx; // repairs re-provision silently; retries find the VM
        let Some(host) = self.hosts.get_mut(host_id.index()) else {
            return; // unknown host: injection config referenced a ghost
        };
        if !host.is_failed() {
            return; // repair of a host that never failed is a no-op
        }
        host.repair();
        let victims = self
            .dead_vms
            .get_mut(host_id.index())
            .map(std::mem::take)
            .unwrap_or_default();
        for vm_id in victims {
            if world.vm(vm_id).status != crate::vm::VmStatus::Destroyed {
                continue; // already revived elsewhere
            }
            let spec = world.vm(vm_id).spec.clone();
            if self.hosts[host_id.index()].allocate_vm(vm_id, &spec) {
                world.vm_mut(vm_id).place(self.id, host_id);
                let factor = self.rate_factor(vm_id);
                world.vm_mut(vm_id).rate_factor = factor;
                *Self::slot_mut(&mut self.vm_scheds, vm_id.index()) =
                    Some(self.scheduler_kind.build(spec.mips * factor, spec.pes));
            }
        }
    }

    /// Current straggler factor for `vm` (1.0 when never degraded).
    fn rate_factor(&self, vm: VmId) -> f64 {
        self.vm_rate_factor
            .get(vm.index())
            .copied()
            .filter(|f| *f > 0.0)
            .unwrap_or(1.0)
    }

    /// Applies a straggler factor to a VM: in-flight work is settled at
    /// the old rate up to `now`, then the VM runs at `factor × mips`.
    /// `factor == 1.0` restores nominal speed. A destroyed VM only has
    /// its factor recorded, so a later repair revives it degraded.
    fn handle_vm_degrade(
        &mut self,
        world: &mut World,
        ctx: &mut Context<'_>,
        vm_id: VmId,
        factor: f64,
    ) {
        debug_assert!(
            factor > 0.0 && factor <= 1.0,
            "degrade factor must be in (0, 1], got {factor}"
        );
        *Self::slot_mut(&mut self.vm_rate_factor, vm_id.index()) = factor;
        if vm_id.index() < world.vms.len() {
            world.vm_mut(vm_id).rate_factor = factor;
        }
        let mips = world.vm(vm_id).spec.mips * factor;
        let Some(sched) = self
            .vm_scheds
            .get_mut(vm_id.index())
            .and_then(Option::as_mut)
        else {
            return; // destroyed (or never-created) VM: factor recorded only
        };
        let tick = sched.set_rate(ctx.now, mips);
        // Completions landing exactly at the change instant are harvested
        // by the settle inside set_rate; a tick before any submission is
        // empty, so the self-entity fallback address is never used.
        let broker = self.broker_hint.unwrap_or(self.entity);
        self.apply_tick(world, ctx, vm_id, tick, broker);
    }

    fn handle_vm_tick(
        &mut self,
        world: &mut World,
        ctx: &mut Context<'_>,
        vm_id: VmId,
        broker: EntityId,
    ) {
        // The queue disarmed the timer when it delivered this tick.
        let Some(sched) = self
            .vm_scheds
            .get_mut(vm_id.index())
            .and_then(Option::as_mut)
        else {
            return;
        };
        let tick = sched.advance(ctx.now);
        self.apply_tick(world, ctx, vm_id, tick, broker);
    }
}

impl Entity for Datacenter {
    fn id(&self) -> EntityId {
        self.entity
    }

    fn handle(&mut self, world: &mut World, ctx: &mut Context<'_>, ev: ScheduledEvent) {
        match ev.event {
            Event::Start => {
                // Arm the fault-injection schedules: failures, then
                // repairs, then straggler intervals, each in plan order.
                let failures = std::mem::take(&mut self.failures);
                for (host, time) in failures {
                    ctx.send_self(time, Event::HostFail { host });
                }
                let repairs = std::mem::take(&mut self.repairs);
                for (host, time) in repairs {
                    ctx.send_self(time, Event::HostRepair { host });
                }
                let degrades = std::mem::take(&mut self.degrades);
                for (vm, time, factor) in degrades {
                    ctx.send_self(time, Event::VmDegrade { vm, factor });
                }
            }
            Event::HostFail { host } => self.handle_host_fail(world, ctx, host),
            Event::HostRepair { host } => self.handle_host_repair(world, ctx, host),
            Event::VmDegrade { vm, factor } => self.handle_vm_degrade(world, ctx, vm, factor),
            Event::VmCreate { vm } => self.handle_vm_create(world, ctx, ev.src, vm),
            Event::CloudletSubmit { cloudlet, vm } => {
                self.handle_cloudlet_submit(world, ctx, ev.src, cloudlet, vm)
            }
            Event::CloudletSubmitBatch { vm, cloudlets } => {
                self.handle_cloudlet_submit_batch(world, ctx, ev.src, vm, cloudlets)
            }
            // VmTicks are self-sent; a tick can only exist after a cloudlet
            // submission, which recorded the broker's address.
            Event::VmTick { vm } => {
                let broker = self
                    .broker_hint
                    .expect("VmTick before any cloudlet submission");
                self.handle_vm_tick(world, ctx, vm, broker)
            }
            other => panic!("datacenter received unexpected event {other:?}"),
        }
    }
}
