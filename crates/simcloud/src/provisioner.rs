//! Resource provisioners.
//!
//! A provisioner tracks a single scalar host resource (RAM, bandwidth,
//! storage) and hands slices of it to VMs, mirroring CloudSim's
//! `RamProvisionerSimple` family. Allocation is strict: a request larger
//! than the remaining capacity is refused.

use std::collections::HashMap;

use crate::ids::VmId;

/// Tracks allocation of one scalar resource to VMs.
#[derive(Debug, Clone)]
pub struct Provisioner {
    capacity: f64,
    allocated: f64,
    per_vm: HashMap<VmId, f64>,
    label: &'static str,
}

impl Provisioner {
    /// Creates a provisioner over `capacity` units of `label`.
    pub fn new(label: &'static str, capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity >= 0.0,
            "{label} capacity must be non-negative, got {capacity}"
        );
        Provisioner {
            capacity,
            allocated: 0.0,
            per_vm: HashMap::new(),
            label,
        }
    }

    /// Total capacity.
    #[inline]
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Currently allocated amount.
    #[inline]
    pub fn allocated(&self) -> f64 {
        self.allocated
    }

    /// Remaining free amount.
    #[inline]
    pub fn available(&self) -> f64 {
        self.capacity - self.allocated
    }

    /// Utilization in `[0, 1]` (0 for zero-capacity provisioners).
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0.0 {
            0.0
        } else {
            self.allocated / self.capacity
        }
    }

    /// Attempts to allocate `amount` for `vm`. A VM may hold at most one
    /// allocation per provisioner; re-allocating replaces the old amount
    /// (CloudSim semantics for VM resizing).
    pub fn allocate(&mut self, vm: VmId, amount: f64) -> bool {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "{} allocation must be non-negative, got {amount}",
            self.label
        );
        let current = self.per_vm.get(&vm).copied().unwrap_or(0.0);
        let needed = amount - current;
        if needed > self.available() + 1e-9 {
            return false;
        }
        self.allocated += needed;
        self.per_vm.insert(vm, amount);
        true
    }

    /// Releases whatever `vm` holds. Returns the freed amount.
    pub fn release(&mut self, vm: VmId) -> f64 {
        if let Some(amount) = self.per_vm.remove(&vm) {
            self.allocated -= amount;
            // Guard against floating-point drift.
            if self.allocated < 0.0 {
                self.allocated = 0.0;
            }
            amount
        } else {
            0.0
        }
    }

    /// Amount currently held by `vm`.
    pub fn allocation_of(&self, vm: VmId) -> f64 {
        self.per_vm.get(&vm).copied().unwrap_or(0.0)
    }

    /// Number of VMs holding allocations.
    pub fn holder_count(&self) -> usize {
        self.per_vm.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_within_capacity() {
        let mut p = Provisioner::new("ram", 1024.0);
        assert!(p.allocate(VmId(0), 512.0));
        assert!(p.allocate(VmId(1), 512.0));
        assert_eq!(p.available(), 0.0);
        assert!(!p.allocate(VmId(2), 1.0));
        assert_eq!(p.holder_count(), 2);
    }

    #[test]
    fn release_returns_amount() {
        let mut p = Provisioner::new("bw", 100.0);
        assert!(p.allocate(VmId(3), 60.0));
        assert_eq!(p.release(VmId(3)), 60.0);
        assert_eq!(p.release(VmId(3)), 0.0, "double release is a no-op");
        assert_eq!(p.available(), 100.0);
    }

    #[test]
    fn reallocation_replaces() {
        let mut p = Provisioner::new("storage", 1000.0);
        assert!(p.allocate(VmId(0), 400.0));
        // Shrink
        assert!(p.allocate(VmId(0), 100.0));
        assert_eq!(p.allocated(), 100.0);
        // Grow beyond remaining-after-replacement must account for the
        // existing hold: 100 held + 900 free, so 1000 total fits.
        assert!(p.allocate(VmId(0), 1000.0));
        assert!(!p.allocate(VmId(1), 1.0));
    }

    #[test]
    fn utilization_math() {
        let mut p = Provisioner::new("ram", 200.0);
        assert_eq!(p.utilization(), 0.0);
        p.allocate(VmId(0), 50.0);
        assert!((p.utilization() - 0.25).abs() < 1e-12);
        let zero = Provisioner::new("ram", 0.0);
        assert_eq!(zero.utilization(), 0.0);
    }

    #[test]
    fn allocation_of_tracks_holders() {
        let mut p = Provisioner::new("ram", 10.0);
        assert_eq!(p.allocation_of(VmId(9)), 0.0);
        p.allocate(VmId(9), 4.0);
        assert_eq!(p.allocation_of(VmId(9)), 4.0);
    }
}
