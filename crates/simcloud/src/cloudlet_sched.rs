//! Per-VM cloudlet execution schedulers.
//!
//! Each VM runs one `CloudletScheduler` that decides how the VM's compute
//! capacity is divided among the cloudlets bound to it. Two policies mirror
//! CloudSim's stock implementations:
//!
//! * [`SpaceShared`] — cloudlets occupy PEs exclusively; at most
//!   `vm.pes` PEs' worth of cloudlets run at once, the rest wait FIFO.
//! * [`TimeShared`] — all cloudlets run concurrently, splitting the VM's
//!   total MIPS evenly (capped at each cloudlet's PE demand).
//!
//! The scheduler is a pure state machine over simulated time: the
//! datacenter calls [`CloudletScheduler::advance`] whenever an event
//! touches the VM, and schedules the returned `next_completion` as a
//! `VmTick`.

use std::collections::VecDeque;

use crate::ids::CloudletId;
use crate::time::SimTime;

/// Execution state of one cloudlet inside a VM scheduler.
#[derive(Debug, Clone)]
pub struct RunningCloudlet {
    /// Which cloudlet this is.
    pub id: CloudletId,
    /// Compute still owed, in million instructions.
    pub remaining_mi: f64,
    /// PEs the cloudlet occupies while running.
    pub pes: u32,
}

impl RunningCloudlet {
    /// Creates the execution record for a cloudlet of `length_mi` MI.
    pub fn new(id: CloudletId, length_mi: f64, pes: u32) -> Self {
        RunningCloudlet {
            id,
            remaining_mi: length_mi,
            pes,
        }
    }
}

/// Result of advancing a scheduler to a point in time.
#[derive(Debug, Default)]
pub struct Tick {
    /// Cloudlets that began executing during this advance.
    pub started: Vec<CloudletId>,
    /// Cloudlets that completed during this advance.
    pub finished: Vec<CloudletId>,
    /// Absolute time of the next completion, if any cloudlet is running.
    pub next_completion: Option<SimTime>,
}

/// Remaining-work threshold below which a cloudlet counts as finished.
/// Guards against floating-point residue at predicted completion times.
const DONE_EPS_MI: f64 = 1e-6;

/// How a VM divides its compute among bound cloudlets.
pub trait CloudletScheduler: Send {
    /// Binds a cloudlet to this VM at time `now` and returns the resulting
    /// state change (it may start immediately or queue).
    fn submit(&mut self, now: SimTime, cl: RunningCloudlet) -> Tick;

    /// Binds a whole batch arriving at the same instant, settling the
    /// clock once for the group instead of once per cloudlet. Equivalent
    /// to submitting each cloudlet in order at `now`.
    fn submit_many(&mut self, now: SimTime, cls: Vec<RunningCloudlet>) -> Tick {
        let mut out = Tick::default();
        for cl in cls {
            let t = self.submit(now, cl);
            out.started.extend(t.started);
            out.finished.extend(t.finished);
            out.next_completion = t.next_completion;
        }
        out
    }

    /// Advances execution to `now`, collecting completions and starts.
    fn advance(&mut self, now: SimTime) -> Tick;

    /// Cloudlets currently executing.
    fn running_count(&self) -> usize;

    /// Cloudlets waiting to execute.
    fn waiting_count(&self) -> usize;

    /// Total MI of work still bound to this VM (running + waiting).
    fn backlog_mi(&self) -> f64;

    /// Removes and returns every cloudlet still bound to this VM, running
    /// or waiting — used when the VM is destroyed (host failure).
    fn drain(&mut self) -> Vec<CloudletId>;

    /// Changes the VM's per-PE rate at time `now` (straggler injection).
    ///
    /// Work executed before `now` is settled under the *old* rate first —
    /// completions that land exactly at `now` are harvested into the
    /// returned tick — then the new rate applies from `now` on. The tick's
    /// `next_completion` reflects the new rate.
    fn set_rate(&mut self, now: SimTime, mips_per_pe: f64) -> Tick;

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// FIFO space-shared scheduler (CloudSim `CloudletSchedulerSpaceShared`),
/// optionally with backfilling.
#[derive(Debug)]
pub struct SpaceShared {
    mips_per_pe: f64,
    total_pes: u32,
    running: Vec<RunningCloudlet>,
    waiting: VecDeque<RunningCloudlet>,
    last_update: SimTime,
    /// PEs held by `running` cloudlets, maintained incrementally so the
    /// promotion loop does not rescan `running` on every iteration.
    pes_in_use: u32,
    /// Set by `submit`: a cloudlet was added after the last harvest pass,
    /// so a same-time `advance` cannot take the cached fast path.
    dirty: bool,
    /// `next_completion` from the last full settle; valid while `!dirty`
    /// and the clock has not moved past `last_update`.
    cached_next: Option<SimTime>,
    /// With backfilling, a waiting cloudlet behind a blocked queue head
    /// may start if enough PEs are free — curing the multi-PE
    /// head-of-line blocking strict FIFO suffers.
    backfill: bool,
}

impl SpaceShared {
    /// Creates a scheduler for a VM with `total_pes` PEs of `mips_per_pe`.
    pub fn new(mips_per_pe: f64, total_pes: u32) -> Self {
        assert!(mips_per_pe > 0.0 && total_pes > 0);
        SpaceShared {
            mips_per_pe,
            total_pes,
            running: Vec::new(),
            waiting: VecDeque::new(),
            last_update: SimTime::ZERO,
            pes_in_use: 0,
            dirty: false,
            cached_next: None,
            backfill: false,
        }
    }

    /// Enables backfilling.
    pub fn with_backfill(mut self) -> Self {
        self.backfill = true;
        self
    }

    /// Execution rate of one cloudlet in MI per millisecond.
    fn rate_mi_per_ms(&self, cl: &RunningCloudlet) -> f64 {
        // Each of the cloudlet's PEs advances at the VM's per-PE MIPS.
        self.mips_per_pe * f64::from(cl.pes) / 1_000.0
    }

    /// Runs the clock forward and harvests completions / promotions.
    fn settle(&mut self, now: SimTime, tick: &mut Tick) {
        // A stale `now` (an out-of-date duplicate tick) must not rewind the
        // clock or shrink completion predictions below what was already
        // settled.
        let now = now.max(self.last_update);
        let dt_ms = now.saturating_sub(self.last_update).as_millis();
        if dt_ms > 0.0 {
            for cl in self.running.iter_mut() {
                cl.remaining_mi -= self.mips_per_pe * f64::from(cl.pes) / 1_000.0 * dt_ms;
            }
        }
        self.last_update = now;
        // Harvest finished in one order-preserving pass, giving their PEs
        // back as we go.
        let pes_in_use = &mut self.pes_in_use;
        self.running.retain(|cl| {
            if cl.remaining_mi <= DONE_EPS_MI {
                *pes_in_use -= cl.pes;
                tick.finished.push(cl.id);
                false
            } else {
                true
            }
        });
        // Promote waiting cloudlets into freed PEs: strict FIFO by
        // default; with backfilling, scan past a blocked head for the
        // first job that fits.
        loop {
            let free = self.total_pes - self.pes_in_use;
            if free == 0 {
                break;
            }
            let fits = |cl: &RunningCloudlet| cl.pes.min(self.total_pes) <= free;
            let pick = if self.backfill {
                self.waiting.iter().position(fits)
            } else {
                self.waiting.front().and_then(|h| fits(h).then_some(0))
            };
            let Some(pos) = pick else { break };
            let mut cl = self.waiting.remove(pos).expect("position checked");
            // A cloudlet demanding more PEs than the VM owns is clamped
            // (CloudSim runs it on all available PEs).
            cl.pes = cl.pes.min(self.total_pes);
            self.pes_in_use += cl.pes;
            tick.started.push(cl.id);
            self.running.push(cl);
        }
    }

    fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        let now = now.max(self.last_update);
        self.running
            .iter()
            .map(|cl| {
                let ms = cl.remaining_mi.max(0.0) / self.rate_mi_per_ms(cl);
                now + SimTime::new(ms)
            })
            .min()
    }
}

impl CloudletScheduler for SpaceShared {
    fn submit(&mut self, now: SimTime, cl: RunningCloudlet) -> Tick {
        let mut tick = Tick::default();
        self.settle(now, &mut tick);
        self.waiting.push_back(cl);
        // Re-settle to promote immediately if PEs are free.
        self.settle(now, &mut tick);
        self.dirty = true;
        tick.next_completion = self.next_completion(now);
        self.cached_next = tick.next_completion;
        tick
    }

    fn submit_many(&mut self, now: SimTime, cls: Vec<RunningCloudlet>) -> Tick {
        let mut tick = Tick::default();
        self.settle(now, &mut tick);
        self.waiting.extend(cls);
        // One promotion pass fills the free PEs in the same FIFO (or
        // backfill) order the per-cloudlet path would.
        self.settle(now, &mut tick);
        self.dirty = true;
        tick.next_completion = self.next_completion(now);
        self.cached_next = tick.next_completion;
        tick
    }

    fn advance(&mut self, now: SimTime) -> Tick {
        // A same-time (or stale) advance with no submissions since the
        // last settle cannot change any state: answer from the cache.
        if !self.dirty && now <= self.last_update {
            return Tick {
                next_completion: self.cached_next,
                ..Tick::default()
            };
        }
        let mut tick = Tick::default();
        self.settle(now, &mut tick);
        self.dirty = false;
        tick.next_completion = self.next_completion(now);
        self.cached_next = tick.next_completion;
        tick
    }

    fn running_count(&self) -> usize {
        self.running.len()
    }

    fn waiting_count(&self) -> usize {
        self.waiting.len()
    }

    fn backlog_mi(&self) -> f64 {
        self.running
            .iter()
            .map(|c| c.remaining_mi.max(0.0))
            .chain(self.waiting.iter().map(|c| c.remaining_mi))
            .sum()
    }

    fn drain(&mut self) -> Vec<CloudletId> {
        self.pes_in_use = 0;
        self.dirty = false;
        self.cached_next = None;
        self.running
            .drain(..)
            .map(|c| c.id)
            .chain(self.waiting.drain(..).map(|c| c.id))
            .collect()
    }

    fn set_rate(&mut self, now: SimTime, mips_per_pe: f64) -> Tick {
        assert!(mips_per_pe > 0.0, "degraded rate must stay positive");
        let mut tick = Tick::default();
        // Settle progress under the old rate, harvesting on-time finishes
        // and promoting into freed PEs, then switch.
        self.settle(now, &mut tick);
        self.mips_per_pe = mips_per_pe;
        self.dirty = false;
        tick.next_completion = self.next_completion(now);
        self.cached_next = tick.next_completion;
        tick
    }

    fn name(&self) -> &'static str {
        "space-shared"
    }
}

/// Fair time-shared scheduler (CloudSim `CloudletSchedulerTimeShared`).
#[derive(Debug)]
pub struct TimeShared {
    mips_per_pe: f64,
    total_pes: u32,
    running: Vec<RunningCloudlet>,
    last_update: SimTime,
    /// Set by `submit`: a cloudlet was added after the last harvest pass,
    /// so a same-time `advance` cannot take the cached fast path.
    dirty: bool,
    /// `next_completion` from the last full settle; valid while `!dirty`
    /// and the clock has not moved past `last_update`.
    cached_next: Option<SimTime>,
}

impl TimeShared {
    /// Creates a scheduler for a VM with `total_pes` PEs of `mips_per_pe`.
    pub fn new(mips_per_pe: f64, total_pes: u32) -> Self {
        assert!(mips_per_pe > 0.0 && total_pes > 0);
        TimeShared {
            mips_per_pe,
            total_pes,
            running: Vec::new(),
            last_update: SimTime::ZERO,
            dirty: false,
            cached_next: None,
        }
    }

    /// Per-cloudlet execution rate in MI/ms under an even capacity split,
    /// capped by the cloudlet's own PE demand.
    fn rate_mi_per_ms(&self, cl: &RunningCloudlet) -> f64 {
        let n = self.running.len().max(1) as f64;
        let total_mips = self.mips_per_pe * f64::from(self.total_pes);
        let fair = total_mips / n;
        let cap = self.mips_per_pe * f64::from(cl.pes);
        fair.min(cap) / 1_000.0
    }

    fn settle(&mut self, now: SimTime, tick: &mut Tick) {
        // Same stale-`now` clamp as the space-shared scheduler.
        let now = now.max(self.last_update);
        let dt_ms = now.saturating_sub(self.last_update).as_millis();
        if dt_ms > 0.0 {
            // Inline `rate_mi_per_ms`, hoisting the parts shared by every
            // cloudlet; the arithmetic (and its evaluation order) is
            // identical, so results match the per-element form bit for bit.
            let n = self.running.len().max(1) as f64;
            let total_mips = self.mips_per_pe * f64::from(self.total_pes);
            let fair = total_mips / n;
            for cl in self.running.iter_mut() {
                let rate = fair.min(self.mips_per_pe * f64::from(cl.pes)) / 1_000.0;
                cl.remaining_mi -= rate * dt_ms;
            }
        }
        self.last_update = now;
        self.running.retain(|cl| {
            if cl.remaining_mi <= DONE_EPS_MI {
                tick.finished.push(cl.id);
                false
            } else {
                true
            }
        });
    }

    fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        let now = now.max(self.last_update);
        self.running
            .iter()
            .map(|cl| {
                let ms = cl.remaining_mi.max(0.0) / self.rate_mi_per_ms(cl);
                now + SimTime::new(ms)
            })
            .min()
    }
}

impl CloudletScheduler for TimeShared {
    fn submit(&mut self, now: SimTime, cl: RunningCloudlet) -> Tick {
        let mut tick = Tick::default();
        self.settle(now, &mut tick);
        tick.started.push(cl.id);
        self.running.push(cl);
        self.dirty = true;
        tick.next_completion = self.next_completion(now);
        self.cached_next = tick.next_completion;
        tick
    }

    fn submit_many(&mut self, now: SimTime, cls: Vec<RunningCloudlet>) -> Tick {
        let mut tick = Tick::default();
        self.settle(now, &mut tick);
        for cl in cls {
            tick.started.push(cl.id);
            self.running.push(cl);
        }
        self.dirty = true;
        tick.next_completion = self.next_completion(now);
        self.cached_next = tick.next_completion;
        tick
    }

    fn advance(&mut self, now: SimTime) -> Tick {
        // Same cached fast path as the space-shared scheduler.
        if !self.dirty && now <= self.last_update {
            return Tick {
                next_completion: self.cached_next,
                ..Tick::default()
            };
        }
        let mut tick = Tick::default();
        self.settle(now, &mut tick);
        self.dirty = false;
        tick.next_completion = self.next_completion(now);
        self.cached_next = tick.next_completion;
        tick
    }

    fn running_count(&self) -> usize {
        self.running.len()
    }

    fn waiting_count(&self) -> usize {
        0
    }

    fn backlog_mi(&self) -> f64 {
        self.running.iter().map(|c| c.remaining_mi.max(0.0)).sum()
    }

    fn drain(&mut self) -> Vec<CloudletId> {
        self.dirty = false;
        self.cached_next = None;
        self.running.drain(..).map(|c| c.id).collect()
    }

    fn set_rate(&mut self, now: SimTime, mips_per_pe: f64) -> Tick {
        assert!(mips_per_pe > 0.0, "degraded rate must stay positive");
        let mut tick = Tick::default();
        self.settle(now, &mut tick);
        self.mips_per_pe = mips_per_pe;
        self.dirty = false;
        tick.next_completion = self.next_completion(now);
        self.cached_next = tick.next_completion;
        tick
    }

    fn name(&self) -> &'static str {
        "time-shared"
    }
}

/// Which stock scheduler a scenario wants on each VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// FIFO, PEs held exclusively (the paper's setting).
    #[default]
    SpaceShared,
    /// FIFO with backfilling: short jobs may overtake a blocked multi-PE
    /// queue head when enough PEs are free.
    SpaceSharedBackfill,
    /// Even MIPS split among all bound cloudlets.
    TimeShared,
}

impl SchedulerKind {
    /// Instantiates the scheduler for a VM with the given shape.
    pub fn build(self, mips_per_pe: f64, pes: u32) -> Box<dyn CloudletScheduler> {
        match self {
            SchedulerKind::SpaceShared => Box::new(SpaceShared::new(mips_per_pe, pes)),
            SchedulerKind::SpaceSharedBackfill => {
                Box::new(SpaceShared::new(mips_per_pe, pes).with_backfill())
            }
            SchedulerKind::TimeShared => Box::new(TimeShared::new(mips_per_pe, pes)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cl(id: u32, mi: f64) -> RunningCloudlet {
        RunningCloudlet::new(CloudletId(id), mi, 1)
    }

    #[test]
    fn space_shared_runs_fifo() {
        let mut s = SpaceShared::new(1_000.0, 1); // 1 MI/ms
        let t0 = SimTime::ZERO;
        let tick = s.submit(t0, cl(0, 100.0));
        assert_eq!(tick.started, vec![CloudletId(0)]);
        assert_eq!(tick.next_completion, Some(SimTime::new(100.0)));

        let tick = s.submit(t0, cl(1, 50.0));
        assert!(tick.started.is_empty(), "second cloudlet must queue");
        assert_eq!(s.waiting_count(), 1);

        // First finishes at t=100; second starts then, finishes at t=150.
        let tick = s.advance(SimTime::new(100.0));
        assert_eq!(tick.finished, vec![CloudletId(0)]);
        assert_eq!(tick.started, vec![CloudletId(1)]);
        assert_eq!(tick.next_completion, Some(SimTime::new(150.0)));

        let tick = s.advance(SimTime::new(150.0));
        assert_eq!(tick.finished, vec![CloudletId(1)]);
        assert_eq!(tick.next_completion, None);
        assert_eq!(s.running_count(), 0);
    }

    #[test]
    fn space_shared_parallel_pes() {
        let mut s = SpaceShared::new(1_000.0, 2);
        let t0 = SimTime::ZERO;
        s.submit(t0, cl(0, 100.0));
        let tick = s.submit(t0, cl(1, 100.0));
        assert_eq!(s.running_count(), 2, "two PEs run two cloudlets at once");
        assert_eq!(tick.next_completion, Some(SimTime::new(100.0)));
        let tick = s.advance(SimTime::new(100.0));
        assert_eq!(tick.finished.len(), 2);
    }

    #[test]
    fn space_shared_clamps_oversized_pe_demand() {
        let mut s = SpaceShared::new(1_000.0, 2);
        let wide = RunningCloudlet::new(CloudletId(0), 100.0, 8);
        let tick = s.submit(SimTime::ZERO, wide);
        assert_eq!(tick.started, vec![CloudletId(0)]);
        // Runs on 2 PEs -> 2 MI/ms -> done at 50ms.
        assert_eq!(tick.next_completion, Some(SimTime::new(50.0)));
    }

    #[test]
    fn time_shared_splits_capacity() {
        let mut s = TimeShared::new(1_000.0, 1); // 1 MI/ms total
        let t0 = SimTime::ZERO;
        s.submit(t0, cl(0, 100.0));
        let tick = s.submit(t0, cl(1, 100.0));
        // Each runs at 0.5 MI/ms -> both complete at 200ms.
        assert_eq!(tick.next_completion, Some(SimTime::new(200.0)));
        let tick = s.advance(SimTime::new(200.0));
        assert_eq!(tick.finished.len(), 2);
    }

    #[test]
    fn time_shared_speeds_up_after_departure() {
        let mut s = TimeShared::new(1_000.0, 1);
        let t0 = SimTime::ZERO;
        s.submit(t0, cl(0, 50.0));
        s.submit(t0, cl(1, 100.0));
        // Both at 0.5 MI/ms. cl0 done at t=100 (50/0.5).
        let tick = s.advance(SimTime::new(100.0));
        assert_eq!(tick.finished, vec![CloudletId(0)]);
        // cl1 has 50 MI left, now at full 1 MI/ms -> done at 150.
        assert_eq!(tick.next_completion, Some(SimTime::new(150.0)));
        let tick = s.advance(SimTime::new(150.0));
        assert_eq!(tick.finished, vec![CloudletId(1)]);
    }

    #[test]
    fn time_shared_caps_at_pe_demand() {
        // VM has 4 PEs x 1000 MIPS but the lone cloudlet only uses 1 PE.
        let mut s = TimeShared::new(1_000.0, 4);
        let tick = s.submit(SimTime::ZERO, cl(0, 100.0));
        // Rate capped at 1 MI/ms, not 4.
        assert_eq!(tick.next_completion, Some(SimTime::new(100.0)));
    }

    #[test]
    fn backlog_accounts_running_and_waiting() {
        let mut s = SpaceShared::new(1_000.0, 1);
        s.submit(SimTime::ZERO, cl(0, 100.0));
        s.submit(SimTime::ZERO, cl(1, 60.0));
        assert!((s.backlog_mi() - 160.0).abs() < 1e-9);
        s.advance(SimTime::new(40.0));
        assert!((s.backlog_mi() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn backfill_cures_head_of_line_blocking() {
        // 2-PE VM running a 1-PE job; queue: [2-PE job (blocked), 1-PE job].
        // Strict FIFO idles the free PE; backfill runs the 1-PE job now.
        let strict = {
            let mut s = SpaceShared::new(1_000.0, 2);
            s.submit(
                SimTime::ZERO,
                RunningCloudlet::new(CloudletId(0), 1_000.0, 1),
            );
            s.submit(
                SimTime::ZERO,
                RunningCloudlet::new(CloudletId(1), 1_000.0, 2),
            );
            let tick = s.submit(SimTime::ZERO, RunningCloudlet::new(CloudletId(2), 100.0, 1));
            assert!(tick.started.is_empty(), "FIFO must not jump the queue");
            s
        };
        assert_eq!(strict.running_count(), 1);

        let mut bf = SpaceShared::new(1_000.0, 2).with_backfill();
        bf.submit(
            SimTime::ZERO,
            RunningCloudlet::new(CloudletId(0), 1_000.0, 1),
        );
        bf.submit(
            SimTime::ZERO,
            RunningCloudlet::new(CloudletId(1), 1_000.0, 2),
        );
        let tick = bf.submit(SimTime::ZERO, RunningCloudlet::new(CloudletId(2), 100.0, 1));
        assert_eq!(
            tick.started,
            vec![CloudletId(2)],
            "backfill starts the small job"
        );
        assert_eq!(bf.running_count(), 2);
        assert_eq!(bf.waiting_count(), 1);
        // The blocked 2-PE job still runs eventually.
        let t = bf.advance(SimTime::new(10_000.0));
        assert!(t.finished.contains(&CloudletId(1)) || bf.running_count() > 0);
    }

    #[test]
    fn backfill_kind_builds() {
        assert_eq!(
            SchedulerKind::SpaceSharedBackfill.build(100.0, 2).name(),
            "space-shared"
        );
    }

    #[test]
    fn drain_empties_both_queues() {
        let mut s = SpaceShared::new(1_000.0, 1);
        s.submit(SimTime::ZERO, cl(0, 100.0));
        s.submit(SimTime::ZERO, cl(1, 100.0));
        let drained = s.drain();
        assert_eq!(drained, vec![CloudletId(0), CloudletId(1)]);
        assert_eq!(s.running_count(), 0);
        assert_eq!(s.waiting_count(), 0);
        assert_eq!(s.backlog_mi(), 0.0);

        let mut t = TimeShared::new(1_000.0, 1);
        t.submit(SimTime::ZERO, cl(2, 50.0));
        assert_eq!(t.drain(), vec![CloudletId(2)]);
        assert_eq!(t.running_count(), 0);
    }

    #[test]
    fn kind_builds_expected_impl() {
        assert_eq!(
            SchedulerKind::SpaceShared.build(100.0, 1).name(),
            "space-shared"
        );
        assert_eq!(
            SchedulerKind::TimeShared.build(100.0, 1).name(),
            "time-shared"
        );
    }

    #[test]
    fn stale_advance_does_not_rewind_progress() {
        // A duplicate tick carrying an older timestamp must neither re-run
        // work nor shrink the completion prediction.
        let mut t = TimeShared::new(1_000.0, 1); // 1 MI/ms
        t.submit(SimTime::ZERO, cl(0, 100.0));
        t.advance(SimTime::new(60.0)); // 40 MI left, clock at 60
        let stale = t.advance(SimTime::new(40.0));
        assert!(stale.finished.is_empty());
        assert_eq!(stale.next_completion, Some(SimTime::new(100.0)));

        let mut s = SpaceShared::new(1_000.0, 1);
        s.submit(SimTime::ZERO, cl(0, 100.0));
        s.advance(SimTime::new(50.0));
        let stale = s.advance(SimTime::new(20.0));
        assert!(stale.finished.is_empty());
        assert_eq!(stale.next_completion, Some(SimTime::new(100.0)));
    }

    #[test]
    fn submit_many_matches_sequential_submits_space_shared() {
        let cls = || vec![cl(0, 100.0), cl(1, 50.0), cl(2, 75.0)];
        let mut one_by_one = SpaceShared::new(1_000.0, 2);
        let mut started = Vec::new();
        let mut last = None;
        for c in cls() {
            let t = one_by_one.submit(SimTime::ZERO, c);
            started.extend(t.started);
            last = t.next_completion;
        }

        let mut batched = SpaceShared::new(1_000.0, 2);
        let tick = batched.submit_many(SimTime::ZERO, cls());
        assert_eq!(tick.started, started);
        assert_eq!(tick.next_completion, last);
        assert_eq!(batched.running_count(), one_by_one.running_count());
        assert_eq!(batched.waiting_count(), one_by_one.waiting_count());

        // The two instances stay in lockstep through the whole run.
        for t_ms in [50.0, 100.0, 125.0, 200.0] {
            let a = one_by_one.advance(SimTime::new(t_ms));
            let b = batched.advance(SimTime::new(t_ms));
            assert_eq!(a.finished, b.finished, "at t={t_ms}");
            assert_eq!(a.started, b.started, "at t={t_ms}");
            assert_eq!(a.next_completion, b.next_completion, "at t={t_ms}");
        }
    }

    #[test]
    fn submit_many_matches_sequential_submits_time_shared() {
        let cls = || vec![cl(0, 100.0), cl(1, 40.0)];
        let mut one_by_one = TimeShared::new(1_000.0, 1);
        let mut last = None;
        for c in cls() {
            last = one_by_one.submit(SimTime::ZERO, c).next_completion;
        }
        let mut batched = TimeShared::new(1_000.0, 1);
        let tick = batched.submit_many(SimTime::ZERO, cls());
        assert_eq!(tick.started, vec![CloudletId(0), CloudletId(1)]);
        assert_eq!(tick.next_completion, last);
        let a = one_by_one.advance(SimTime::new(80.0));
        let b = batched.advance(SimTime::new(80.0));
        assert_eq!(a.finished, b.finished);
        assert_eq!(a.next_completion, b.next_completion);
    }

    #[test]
    fn cached_fast_path_survives_interleaved_submit() {
        // advance → submit (dirty) → same-time advance must re-settle and
        // still report the fresh prediction, not a stale cache.
        let mut s = SpaceShared::new(1_000.0, 2);
        s.submit(SimTime::ZERO, cl(0, 100.0));
        s.advance(SimTime::new(10.0));
        s.submit(SimTime::new(10.0), cl(1, 20.0));
        let t = s.advance(SimTime::new(10.0));
        assert_eq!(t.next_completion, Some(SimTime::new(30.0)));
    }

    #[test]
    fn set_rate_settles_old_rate_then_slows() {
        // 1 MI/ms for 50ms (50 MI done), then halved: the remaining 50 MI
        // takes 100ms, finishing at t=150 instead of t=100.
        let mut t = TimeShared::new(1_000.0, 1);
        t.submit(SimTime::ZERO, cl(0, 100.0));
        let tick = t.set_rate(SimTime::new(50.0), 500.0);
        assert!(tick.finished.is_empty());
        assert_eq!(tick.next_completion, Some(SimTime::new(150.0)));
        let done = t.advance(SimTime::new(150.0));
        assert_eq!(done.finished, vec![CloudletId(0)]);

        let mut s = SpaceShared::new(1_000.0, 1);
        s.submit(SimTime::ZERO, cl(0, 100.0));
        let tick = s.set_rate(SimTime::new(50.0), 500.0);
        assert_eq!(tick.next_completion, Some(SimTime::new(150.0)));
        // Restoring the rate mid-flight speeds the remainder back up:
        // 25 MI done by t=100 under 0.5 MI/ms, 25 MI left at 1 MI/ms.
        let tick = s.set_rate(SimTime::new(100.0), 1_000.0);
        assert_eq!(tick.next_completion, Some(SimTime::new(125.0)));
    }

    #[test]
    fn set_rate_harvests_on_time_completions() {
        let mut s = SpaceShared::new(1_000.0, 1);
        s.submit(SimTime::ZERO, cl(0, 100.0));
        s.submit(SimTime::ZERO, cl(1, 40.0));
        // cl0 finishes exactly at the rate-change instant; cl1 is promoted
        // and runs at the new (halved) rate: 40 MI / 0.5 = 80ms.
        let tick = s.set_rate(SimTime::new(100.0), 500.0);
        assert_eq!(tick.finished, vec![CloudletId(0)]);
        assert_eq!(tick.started, vec![CloudletId(1)]);
        assert_eq!(tick.next_completion, Some(SimTime::new(180.0)));
    }

    #[test]
    fn advance_is_idempotent_at_same_time() {
        let mut s = SpaceShared::new(1_000.0, 1);
        s.submit(SimTime::ZERO, cl(0, 100.0));
        let t = SimTime::new(30.0);
        let first = s.advance(t);
        let second = s.advance(t);
        assert_eq!(first.next_completion, second.next_completion);
        assert!(second.finished.is_empty());
    }
}
