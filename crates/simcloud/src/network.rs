//! Network model.
//!
//! The paper uses CloudSim's *default* topology — no BRITE file — so the
//! network's only observable effect is the time input/output files take to
//! cross a VM's bandwidth, plus an optional fixed latency between the
//! broker and each datacenter. Both are modeled here.

use crate::ids::DatacenterId;
use crate::time::SimTime;

/// Time to move `size_mb` megabytes over a `bw_mbps` megabit-per-second
/// link, in simulated milliseconds. Zero-size transfers are free; a zero
/// bandwidth link would stall forever, so it is rejected.
pub fn transfer_time(size_mb: f64, bw_mbps: f64) -> SimTime {
    assert!(size_mb >= 0.0, "transfer size must be non-negative");
    if size_mb == 0.0 {
        return SimTime::ZERO;
    }
    assert!(
        bw_mbps > 0.0 && bw_mbps.is_finite(),
        "bandwidth must be positive to transfer data, got {bw_mbps}"
    );
    // MB -> megabits (x8), divided by Mbps gives seconds.
    SimTime::from_secs(size_mb * 8.0 / bw_mbps)
}

/// Broker-to-datacenter latency map.
///
/// CloudSim's default topology has effectively-zero latency; scenarios that
/// want geographic spread can assign per-datacenter one-way delays.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    latencies_ms: Vec<f64>,
}

impl Topology {
    /// A topology where every datacenter is reachable with zero latency
    /// (the paper's setting).
    pub fn flat(datacenters: usize) -> Self {
        Topology {
            latencies_ms: vec![0.0; datacenters],
        }
    }

    /// A topology with explicit one-way latencies per datacenter.
    pub fn with_latencies(latencies_ms: Vec<f64>) -> Self {
        assert!(
            latencies_ms.iter().all(|l| l.is_finite() && *l >= 0.0),
            "latencies must be non-negative"
        );
        Topology { latencies_ms }
    }

    /// One-way latency from the broker to `dc`.
    pub fn latency_to(&self, dc: DatacenterId) -> SimTime {
        let ms = self.latencies_ms.get(dc.index()).copied().unwrap_or(0.0);
        SimTime::new(ms)
    }

    /// Number of datacenters this topology knows about.
    pub fn len(&self) -> usize {
        self.latencies_ms.len()
    }

    /// True if the topology covers no datacenters.
    pub fn is_empty(&self) -> bool {
        self.latencies_ms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_math() {
        // 300 MB over 500 Mbps = 2400 megabits / 500 = 4.8 s.
        let t = transfer_time(300.0, 500.0);
        assert!((t.as_secs() - 4.8).abs() < 1e-12);
    }

    #[test]
    fn zero_size_is_free_even_with_zero_bw() {
        assert_eq!(transfer_time(0.0, 0.0), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected_for_real_transfers() {
        let _ = transfer_time(1.0, 0.0);
    }

    #[test]
    fn flat_topology_is_zero_latency() {
        let t = Topology::flat(3);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.latency_to(DatacenterId(2)), SimTime::ZERO);
        // Out-of-range datacenters default to zero rather than panicking,
        // matching CloudSim's forgiving default topology.
        assert_eq!(t.latency_to(DatacenterId(99)), SimTime::ZERO);
    }

    #[test]
    fn explicit_latencies() {
        let t = Topology::with_latencies(vec![1.0, 2.5]);
        assert_eq!(t.latency_to(DatacenterId(0)), SimTime::new(1.0));
        assert_eq!(t.latency_to(DatacenterId(1)), SimTime::new(2.5));
    }
}
