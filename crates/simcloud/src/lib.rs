//! # simcloud — a discrete-event cloud simulator
//!
//! `simcloud` is a from-scratch Rust substitute for the parts of CloudSim
//! exercised by *"Performance Analysis of Bio-Inspired Scheduling
//! Algorithms for Cloud Environments"* (Al Buhussain, De Grande,
//! Boukerche; IPDPS-W 2016): datacenters with priced resources, hosts with
//! processing elements and RAM/bandwidth/storage provisioners, VMs with
//! space- or time-shared cloudlet schedulers, a broker that plays back a
//! cloudlet→VM assignment, and a deterministic event kernel.
//!
//! The crate deliberately separates *deciding* from *executing*: scheduling
//! algorithms (in `biosched-core`) are pure functions that produce an
//! assignment, and the simulator measures what that assignment costs in
//! simulated time, balance and money.
//!
//! ## Layers
//!
//! * [`kernel`] — event queue, clock, entity dispatch ([`kernel::Kernel`]),
//!   plus a sharded per-VM replay engine selected via
//!   [`simulation::EngineKind`] (trace-equivalent, parallel over VMs).
//! * Resources — [`pe`], [`host`], [`provisioner`], [`characteristics`].
//! * Execution — [`cloudlet_sched`] (space/time shared), [`vm_alloc`]
//!   (VM→host policies), [`datacenter`], [`broker`], [`network`], [`cost`].
//! * Measurement — [`stats::SimulationOutcome`] with the paper's Eq. 12
//!   (simulation time) and Eq. 13 (time imbalance).
//! * Orchestration — [`simulation::SimulationBuilder`], the one-call API.
//!
//! See the crate-level example on [`simulation::SimulationBuilder`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod broker;
pub mod characteristics;
pub mod cloudlet;
pub mod cloudlet_sched;
pub mod cost;
pub mod datacenter;
pub mod energy;
pub mod error;
pub mod event;
pub mod faults;
pub mod host;
pub mod ids;
pub mod kernel;
pub mod network;
pub mod pe;
pub mod provisioner;
pub mod rng;
mod sharded;
pub mod simulation;
pub mod stats;
pub mod time;
pub mod vm;
pub mod vm_alloc;

/// Convenience re-exports for scenario construction.
pub mod prelude {
    pub use crate::broker::{RecoveryPolicy, Rescheduler};
    pub use crate::characteristics::{CostModel, DatacenterCharacteristics};
    pub use crate::cloudlet::{Cloudlet, CloudletSpec, CloudletStatus};
    pub use crate::cloudlet_sched::SchedulerKind;
    pub use crate::datacenter::DatacenterBlueprint;
    pub use crate::energy::{estimate_energy, EnergyReport, PowerModel};
    pub use crate::error::SimError;
    pub use crate::faults::{FaultPlan, FaultSpec, HostOutage, VmSlowdown};
    pub use crate::host::{Host, HostSpec};
    pub use crate::ids::{CloudletId, DatacenterId, HostId, VmId};
    pub use crate::network::Topology;
    pub use crate::simulation::{EngineFallback, EngineKind, SimulationBuilder};
    pub use crate::stats::{
        CloudletRecord, RecordMode, ResilienceCounters, SimulationOutcome, VmUsage,
    };
    pub use crate::time::SimTime;
    pub use crate::vm::{Vm, VmSpec, VmStatus};
    pub use crate::vm_alloc::{
        BestFit, Consolidate, FirstFit, LeastLoaded, RoundRobinHosts, VmAllocationPolicy,
    };
}
