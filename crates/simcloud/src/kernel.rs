//! The discrete-event simulation kernel.
//!
//! The kernel owns the clock, the future-event list and the registered
//! entities (brokers and datacenters). Shared simulation objects — VMs and
//! cloudlets — live in the [`World`] arena so any entity can read or update
//! them while handling an event without passing them through messages.

use crate::cloudlet::{Cloudlet, CloudletSpec};
use crate::event::{Event, EventQueue, ScheduledEvent};
use crate::ids::{CloudletId, EntityId, VmId};
use crate::time::SimTime;
use crate::vm::{Vm, VmSpec};

/// Shared simulation state: dense arenas of VMs and cloudlets.
#[derive(Debug, Default)]
pub struct World {
    /// All VMs, indexed by [`VmId`].
    pub vms: Vec<Vm>,
    /// All cloudlets, indexed by [`CloudletId`].
    pub cloudlets: Vec<Cloudlet>,
    /// Run-level recovery counters, accumulated by the broker as faults
    /// strike and retries land. Stays zeroed on fault-free runs.
    pub resilience: crate::stats::ResilienceCounters,
}

impl World {
    /// Creates a world from VM and cloudlet specs.
    pub fn new(vm_specs: Vec<VmSpec>, cloudlet_specs: Vec<CloudletSpec>) -> Self {
        let vms = vm_specs
            .into_iter()
            .enumerate()
            .map(|(i, s)| Vm::new(VmId::from_index(i), s))
            .collect();
        let cloudlets = cloudlet_specs
            .into_iter()
            .enumerate()
            .map(|(i, s)| Cloudlet::new(CloudletId::from_index(i), s))
            .collect();
        World {
            vms,
            cloudlets,
            resilience: crate::stats::ResilienceCounters::default(),
        }
    }

    /// Immutable VM lookup.
    #[inline]
    pub fn vm(&self, id: VmId) -> &Vm {
        &self.vms[id.index()]
    }

    /// Mutable VM lookup.
    #[inline]
    pub fn vm_mut(&mut self, id: VmId) -> &mut Vm {
        &mut self.vms[id.index()]
    }

    /// Immutable cloudlet lookup.
    #[inline]
    pub fn cloudlet(&self, id: CloudletId) -> &Cloudlet {
        &self.cloudlets[id.index()]
    }

    /// Mutable cloudlet lookup.
    #[inline]
    pub fn cloudlet_mut(&mut self, id: CloudletId) -> &mut Cloudlet {
        &mut self.cloudlets[id.index()]
    }
}

/// Event-sending facilities handed to an entity while it handles an event.
pub struct Context<'a> {
    /// Current simulated time.
    pub now: SimTime,
    self_id: EntityId,
    queue: &'a mut EventQueue,
}

impl<'a> Context<'a> {
    /// Builds a context for `self_id` at `now` over `queue`. The epoch
    /// driver ([`crate::sharded`]) uses this to invoke the real entity
    /// handlers outside [`Kernel::run`].
    pub(crate) fn attach(now: SimTime, self_id: EntityId, queue: &'a mut EventQueue) -> Self {
        Context {
            now,
            self_id,
            queue,
        }
    }

    /// Schedules `event` for `dest` after `delay`.
    pub fn send(&mut self, dest: EntityId, delay: SimTime, event: Event) {
        debug_assert!(
            delay.as_millis() >= 0.0,
            "cannot schedule into the past (delay {delay:?})"
        );
        self.queue.push(self.now + delay, self.self_id, dest, event);
    }

    /// Schedules `event` for the sending entity itself after `delay`.
    pub fn send_self(&mut self, delay: SimTime, event: Event) {
        self.send(self.self_id, delay, event);
    }

    /// Arms (or coalesces) the self-addressed `VmTick` timer for `vm` at
    /// absolute time `at`. The queue keeps at most one live deadline per
    /// VM and lazily drops superseded duplicates.
    pub fn send_vm_tick(&mut self, vm: crate::ids::VmId, at: SimTime) {
        debug_assert!(
            at >= self.now,
            "cannot arm a tick in the past ({at:?} < {:?})",
            self.now
        );
        self.queue
            .push_vm_tick(self.now, self.self_id, self.self_id, vm, at);
    }

    /// Disarms `vm`'s tick timer (used when the VM is destroyed).
    pub fn cancel_vm_tick(&mut self, vm: crate::ids::VmId) {
        self.queue.cancel_vm_tick(vm);
    }
}

/// A simulation actor: reacts to events, mutates the world, sends events.
pub trait Entity: Send {
    /// The entity's kernel address.
    fn id(&self) -> EntityId;

    /// Handles one delivered event.
    fn handle(&mut self, world: &mut World, ctx: &mut Context<'_>, ev: ScheduledEvent);
}

/// Statistics from a completed kernel run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Final clock value.
    pub end_time: SimTime,
    /// Events processed.
    pub events_processed: u64,
    /// Whether the run stopped on an empty queue (vs. the event limit).
    pub drained: bool,
}

/// The discrete-event engine.
pub struct Kernel {
    queue: EventQueue,
    clock: SimTime,
    entities: Vec<Option<Box<dyn Entity>>>,
    max_events: u64,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Default runaway-event guard: large enough for paper-scale runs
    /// (10^6 cloudlets produce a few events each); small enough to catch
    /// infinite loops. Shared with the epoch-sharded driver.
    pub const DEFAULT_MAX_EVENTS: u64 = 200_000_000;

    /// Creates an empty kernel with a generous runaway-event guard.
    pub fn new() -> Self {
        Kernel {
            queue: EventQueue::new(),
            clock: SimTime::ZERO,
            entities: Vec::new(),
            max_events: Self::DEFAULT_MAX_EVENTS,
        }
    }

    /// Overrides the runaway-event guard.
    pub fn with_max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Reserves the entity id the next registered entity will receive.
    /// Entities usually need their own id at construction time.
    pub fn next_entity_id(&self) -> EntityId {
        EntityId::from_index(self.entities.len())
    }

    /// Registers an entity; its [`Entity::id`] must equal the id returned
    /// by [`Kernel::next_entity_id`] before the call.
    pub fn register(&mut self, entity: Box<dyn Entity>) -> EntityId {
        let id = entity.id();
        assert_eq!(
            id,
            self.next_entity_id(),
            "entity registered with the wrong id"
        );
        self.entities.push(Some(entity));
        id
    }

    /// Current simulated time.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Pending event count (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Delivers `Start` to every entity at t=0 and runs to completion.
    pub fn run(&mut self, world: &mut World) -> RunStats {
        for idx in 0..self.entities.len() {
            let dest = EntityId::from_index(idx);
            self.queue.push(SimTime::ZERO, dest, dest, Event::Start);
        }
        self.run_queue(world)
    }

    /// Runs the event loop until the queue drains or the guard trips.
    fn run_queue(&mut self, world: &mut World) -> RunStats {
        let mut processed = 0u64;
        while let Some(ev) = self.queue.pop() {
            debug_assert!(
                ev.time >= self.clock,
                "event queue delivered time travel: {:?} < {:?}",
                ev.time,
                self.clock
            );
            self.clock = ev.time;
            processed += 1;
            if processed > self.max_events {
                return RunStats {
                    end_time: self.clock,
                    events_processed: processed,
                    drained: false,
                };
            }
            let slot = ev.dest.index();
            let mut entity = self.entities[slot]
                .take()
                .unwrap_or_else(|| panic!("event for unknown entity {:?}", ev.dest));
            {
                let mut ctx = Context {
                    now: self.clock,
                    self_id: ev.dest,
                    queue: &mut self.queue,
                };
                entity.handle(world, &mut ctx, ev);
            }
            self.entities[slot] = Some(entity);
        }
        RunStats {
            end_time: self.clock,
            events_processed: processed,
            drained: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test entity: forwards `Start` to a peer `hops` times, then stops.
    struct PingPong {
        id: EntityId,
        peer: Option<EntityId>,
        hops_left: u32,
        received: u32,
    }

    impl Entity for PingPong {
        fn id(&self) -> EntityId {
            self.id
        }

        fn handle(&mut self, _world: &mut World, ctx: &mut Context<'_>, _ev: ScheduledEvent) {
            self.received += 1;
            if self.hops_left > 0 {
                if let Some(peer) = self.peer {
                    self.hops_left -= 1;
                    ctx.send(peer, SimTime::new(1.0), Event::Start);
                }
            }
        }
    }

    #[test]
    fn entities_exchange_events_and_clock_advances() {
        let mut kernel = Kernel::new();
        let a_id = kernel.next_entity_id();
        kernel.register(Box::new(PingPong {
            id: a_id,
            peer: None, // set below via second entity pointing back
            hops_left: 0,
            received: 0,
        }));
        let b_id = kernel.next_entity_id();
        kernel.register(Box::new(PingPong {
            id: b_id,
            peer: Some(a_id),
            hops_left: 3,
            received: 0,
        }));
        let mut world = World::default();
        let stats = kernel.run(&mut world);
        assert!(stats.drained);
        // 2 Start events + 1 forwarded on B's start (B forwards only while
        // it has hops; A has no peer so forwards nothing).
        assert_eq!(stats.events_processed, 3);
        assert_eq!(kernel.clock(), SimTime::new(1.0));
    }

    #[test]
    fn max_events_guard_trips() {
        struct Looper {
            id: EntityId,
        }
        impl Entity for Looper {
            fn id(&self) -> EntityId {
                self.id
            }
            fn handle(&mut self, _w: &mut World, ctx: &mut Context<'_>, _ev: ScheduledEvent) {
                ctx.send_self(SimTime::new(1.0), Event::Start);
            }
        }
        let mut kernel = Kernel::new().with_max_events(100);
        let id = kernel.next_entity_id();
        kernel.register(Box::new(Looper { id }));
        let mut world = World::default();
        let stats = kernel.run(&mut world);
        assert!(!stats.drained);
        assert_eq!(stats.events_processed, 101);
    }

    #[test]
    #[should_panic(expected = "wrong id")]
    fn mismatched_registration_panics() {
        let mut kernel = Kernel::new();
        kernel.register(Box::new(PingPong {
            id: EntityId(5),
            peer: None,
            hops_left: 0,
            received: 0,
        }));
    }

    #[test]
    fn world_arena_lookup() {
        let mut world = World::new(vec![VmSpec::default(); 2], vec![CloudletSpec::default(); 3]);
        assert_eq!(world.vms.len(), 2);
        assert_eq!(world.cloudlets.len(), 3);
        assert_eq!(world.vm(VmId(1)).id, VmId(1));
        assert_eq!(world.cloudlet(CloudletId(2)).id, CloudletId(2));
        world.vm_mut(VmId(0)).reject();
        assert!(!world.vm(VmId(0)).is_active());
        world.cloudlet_mut(CloudletId(0)).cost = 5.0;
        assert_eq!(world.cloudlet(CloudletId(0)).cost, 5.0);
    }

    #[test]
    fn empty_kernel_run_is_noop() {
        let mut kernel = Kernel::new();
        let mut world = World::default();
        let stats = kernel.run(&mut world);
        assert!(stats.drained);
        assert_eq!(stats.events_processed, 0);
        assert_eq!(stats.end_time, SimTime::ZERO);
    }
}
