//! Simulation events and the deterministic event queue.
//!
//! The kernel advances by repeatedly popping the earliest scheduled event.
//! Ties on time are broken by insertion sequence number, which makes runs
//! fully deterministic for a fixed input.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::ids::{CloudletId, EntityId, HostId, VmId};
use crate::time::SimTime;

/// The payload of a scheduled event.
///
/// Events are the only communication channel between kernel entities
/// (brokers and datacenters), mirroring CloudSim's message-passing model.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Kernel start-of-simulation signal, delivered to every entity at t=0.
    Start,
    /// Broker asks a datacenter to instantiate a VM.
    VmCreate {
        /// The VM to create.
        vm: VmId,
    },
    /// Datacenter acknowledges (or refuses) a VM creation.
    VmCreateAck {
        /// The VM the request was about.
        vm: VmId,
        /// Whether a host was found.
        success: bool,
    },
    /// Broker submits a cloudlet for execution on a previously created VM.
    CloudletSubmit {
        /// The cloudlet to execute.
        cloudlet: CloudletId,
        /// The VM the scheduler bound it to.
        vm: VmId,
    },
    /// Datacenter returns a completed cloudlet to its broker.
    CloudletReturn {
        /// The finished cloudlet.
        cloudlet: CloudletId,
    },
    /// Datacenter-internal timer: re-evaluate the run-queue of one VM.
    VmTick {
        /// The VM whose queue should be settled.
        vm: VmId,
    },
    /// Datacenter returns a cloudlet that can no longer run (its VM was
    /// destroyed or never existed).
    CloudletFailed {
        /// The failed cloudlet.
        cloudlet: CloudletId,
    },
    /// Failure injection: a host goes down, taking its VMs with it.
    HostFail {
        /// The failing host (within the receiving datacenter).
        host: HostId,
    },
}

/// An event bound to a destination and a firing time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent {
    /// Simulated firing time.
    pub time: SimTime,
    /// Monotonic tie-breaker assigned by the queue.
    pub seq: u64,
    /// Receiving entity.
    pub dest: EntityId,
    /// Sending entity.
    pub src: EntityId,
    /// Payload.
    pub event: Event,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic future-event list.
///
/// A thin wrapper over `BinaryHeap` that stamps every insertion with a
/// sequence number so same-time events fire in submission order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Schedules `event` for `dest` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, src: EntityId, dest: EntityId, event: Event) {
        debug_assert!(time.is_valid_clock(), "event scheduled at invalid time");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(ScheduledEvent {
            time,
            seq,
            dest,
            src,
            event,
        });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        let ev = self.heap.pop();
        if ev.is_some() {
            self.popped += 1;
        }
        ev
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever pushed (diagnostics).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events ever popped (diagnostics).
    pub fn total_popped(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(q: &mut EventQueue, t: f64) {
        q.push(SimTime::new(t), EntityId(0), EntityId(1), Event::Start);
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        ev(&mut q, 5.0);
        ev(&mut q, 1.0);
        ev(&mut q, 3.0);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_millis())
            .collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10u32 {
            q.push(SimTime::new(2.0), EntityId(0), EntityId(i), Event::Start);
        }
        let dests: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.dest.0).collect();
        assert_eq!(dests, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        ev(&mut q, 1.0);
        ev(&mut q, 2.0);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::new(1.0)));
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert_eq!(q.total_popped(), 0);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        ev(&mut q, 10.0);
        ev(&mut q, 4.0);
        assert_eq!(q.pop().unwrap().time, SimTime::new(4.0));
        ev(&mut q, 7.0);
        ev(&mut q, 2.0);
        assert_eq!(q.pop().unwrap().time, SimTime::new(2.0));
        assert_eq!(q.pop().unwrap().time, SimTime::new(7.0));
        assert_eq!(q.pop().unwrap().time, SimTime::new(10.0));
    }
}
