//! Simulation events and the deterministic event queue.
//!
//! The kernel advances by repeatedly popping the earliest scheduled event.
//! Ties on time are broken by insertion sequence number, which makes runs
//! fully deterministic for a fixed input.
//!
//! The queue is a *bucketed* future-event list: events sharing a timestamp
//! live in one append-ordered bucket, buckets are keyed by time in a
//! `BTreeMap`, and the earliest bucket is held out and drained by cursor.
//! Discrete-event cloud workloads are tie-heavy — a broker submitting 10⁶
//! cloudlets lands them on a handful of distinct delivery times — so most
//! pushes and pops are O(1) appends/reads instead of heap percolations.
//!
//! `VmTick` timer events additionally go through [`EventQueue::push_vm_tick`],
//! which keeps one armed deadline per VM and lazily drops superseded or
//! cancelled ticks at pop time, so stale duplicates never reach the kernel.

use std::collections::BTreeMap;

use crate::ids::{CloudletId, EntityId, HostId, VmId};
use crate::time::SimTime;

/// The payload of a scheduled event.
///
/// Events are the only communication channel between kernel entities
/// (brokers and datacenters), mirroring CloudSim's message-passing model.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Kernel start-of-simulation signal, delivered to every entity at t=0.
    Start,
    /// Broker asks a datacenter to instantiate a VM.
    VmCreate {
        /// The VM to create.
        vm: VmId,
    },
    /// Datacenter acknowledges (or refuses) a VM creation.
    VmCreateAck {
        /// The VM the request was about.
        vm: VmId,
        /// Whether a host was found.
        success: bool,
    },
    /// Broker submits a cloudlet for execution on a previously created VM.
    CloudletSubmit {
        /// The cloudlet to execute.
        cloudlet: CloudletId,
        /// The VM the scheduler bound it to.
        vm: VmId,
    },
    /// Broker submits a batch of cloudlets bound to one VM, all delivered
    /// at the same time — the VM's scheduler settles once for the whole
    /// group instead of once per cloudlet.
    CloudletSubmitBatch {
        /// The VM the batch is bound to.
        vm: VmId,
        /// The cloudlets, in submission order.
        cloudlets: Vec<CloudletId>,
    },
    /// Datacenter returns a completed cloudlet to its broker.
    CloudletReturn {
        /// The finished cloudlet.
        cloudlet: CloudletId,
    },
    /// Datacenter-internal timer: re-evaluate the run-queue of one VM.
    VmTick {
        /// The VM whose queue should be settled.
        vm: VmId,
    },
    /// Datacenter returns a cloudlet that can no longer run (its VM was
    /// destroyed or never existed).
    CloudletFailed {
        /// The failed cloudlet.
        cloudlet: CloudletId,
    },
    /// Failure injection: a host goes down, taking its VMs with it.
    HostFail {
        /// The failing host (within the receiving datacenter).
        host: HostId,
    },
    /// Fault injection: a previously failed host comes back. Its PEs are
    /// repaired and the VMs that died with it are re-provisioned, so the
    /// capacity rejoins the fleet for subsequent retry batches.
    HostRepair {
        /// The repaired host (within the receiving datacenter).
        host: HostId,
    },
    /// Fault injection: a VM starts (or stops) straggling. The VM's
    /// effective per-PE rate becomes `factor × spec.mips`; `factor == 1.0`
    /// restores nominal speed. Work already queued keeps running at the
    /// new rate from the event time onward.
    VmDegrade {
        /// The straggling VM.
        vm: VmId,
        /// Multiplier on the VM's nominal MIPS, in `(0, 1]`.
        factor: f64,
    },
    /// Broker-internal timer: a retry batch's backoff expired; collect the
    /// pending failed cloudlets and reschedule them.
    RetryWake,
}

/// An event bound to a destination and a firing time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent {
    /// Simulated firing time.
    pub time: SimTime,
    /// Monotonic tie-breaker assigned by the queue.
    pub seq: u64,
    /// Receiving entity.
    pub dest: EntityId,
    /// Sending entity.
    pub src: EntityId,
    /// Payload.
    pub event: Event,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// One timestamp's events, appended in seq order and drained by cursor.
#[derive(Debug, Default)]
struct Bucket {
    events: Vec<ScheduledEvent>,
    cursor: usize,
}

impl Bucket {
    fn exhausted(&self) -> bool {
        self.cursor >= self.events.len()
    }
}

/// Deterministic bucketed future-event list.
///
/// Every insertion is stamped with a sequence number so same-time events
/// fire in submission order — the (time, seq) determinism contract the
/// kernel relies on.
#[derive(Debug, Default)]
pub struct EventQueue {
    /// The earliest bucket, held out of the map while it drains. Pushes at
    /// its exact timestamp append to it (higher seq ⇒ delivered after), so
    /// zero-delay sends issued while handling a time-t event still fire in
    /// insertion order at t.
    current: Option<(SimTime, Bucket)>,
    /// Buckets strictly after `current`, keyed by firing time.
    future: BTreeMap<SimTime, Vec<ScheduledEvent>>,
    /// Storage of drained buckets kept for reuse. At paper scale a bucket
    /// holds ~10⁶ events (~64 MB); dropping and reallocating one per
    /// timestamp turns into mmap/munmap churn that dominates wall-clock,
    /// so drained allocations are recycled instead.
    spare: Vec<Vec<ScheduledEvent>>,
    /// Earliest armed `VmTick` deadline per VM: the lazy-deletion index
    /// behind tick coalescing. An in-queue tick is delivered only if its
    /// time still matches this slot.
    tick_armed: Vec<Option<SimTime>>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
    pending: usize,
    coalesced: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty queue with pre-reserved capacity.
    ///
    /// Bucket storage grows on demand; the hint is kept for API
    /// compatibility with the former binary-heap implementation.
    pub fn with_capacity(_cap: usize) -> Self {
        Self::default()
    }

    /// Schedules `event` for `dest` at absolute time `time`.
    ///
    /// `VmTick` events must go through [`EventQueue::push_vm_tick`] instead
    /// so the coalescing index stays consistent.
    pub fn push(&mut self, time: SimTime, src: EntityId, dest: EntityId, event: Event) {
        debug_assert!(
            !matches!(event, Event::VmTick { .. }),
            "VmTick events must be scheduled through push_vm_tick"
        );
        self.push_raw(time, src, dest, event);
    }

    fn push_raw(&mut self, time: SimTime, src: EntityId, dest: EntityId, event: Event) {
        debug_assert!(time.is_valid_clock(), "event scheduled at invalid time");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.pending += 1;
        let ev = ScheduledEvent {
            time,
            seq,
            dest,
            src,
            event,
        };
        enum Target {
            Current,
            Future,
            Restage,
        }
        let target = match &self.current {
            Some((t, _)) if time == *t => Target::Current,
            Some((t, _)) if time < *t => Target::Restage,
            _ => Target::Future,
        };
        match target {
            Target::Current => {
                self.current
                    .as_mut()
                    .expect("checked above")
                    .1
                    .events
                    .push(ev);
            }
            Target::Future => {
                let spare = &mut self.spare;
                self.future
                    .entry(time)
                    .or_insert_with(|| spare.pop().unwrap_or_default())
                    .push(ev);
            }
            Target::Restage => {
                // A push before the bucket being drained (never issued by
                // entity handlers, whose delays are non-negative): put the
                // bucket's remainder back so pop re-selects the earliest.
                let (t, bucket) = self.current.take().expect("checked above");
                let rest: Vec<ScheduledEvent> = bucket.events[bucket.cursor..].to_vec();
                if !rest.is_empty() {
                    self.future.insert(t, rest);
                }
                self.future.entry(time).or_default().push(ev);
            }
        }
    }

    /// Schedules (or coalesces) the per-VM settle timer.
    ///
    /// Mirrors the classic pending-tick discipline: the new deadline is
    /// scheduled only if no tick is armed for `vm`, the new deadline is
    /// earlier than the armed one, or the armed one is already in the past.
    /// A superseded armed tick stays in the queue and is dropped at pop
    /// time (lazy deletion), so the earliest armed deadline always fires.
    pub fn push_vm_tick(
        &mut self,
        now: SimTime,
        src: EntityId,
        dest: EntityId,
        vm: VmId,
        time: SimTime,
    ) {
        if self.tick_armed.len() <= vm.index() {
            self.tick_armed.resize(vm.index() + 1, None);
        }
        let slot = &mut self.tick_armed[vm.index()];
        if slot.is_none_or(|armed| time < armed || armed < now) {
            *slot = Some(time);
            self.push_raw(time, src, dest, Event::VmTick { vm });
        }
    }

    /// The armed `VmTick` deadline for `vm`, if any. The epoch driver
    /// ([`crate::sharded`]) reads this to seed a VM's local tick state
    /// before a parallel replay segment.
    pub(crate) fn armed_tick(&self, vm: VmId) -> Option<SimTime> {
        self.tick_armed.get(vm.index()).copied().flatten()
    }

    /// Disarms `vm`'s settle timer; any in-queue tick for it is dropped at
    /// pop time. Used when the VM is destroyed.
    pub fn cancel_vm_tick(&mut self, vm: VmId) {
        if let Some(slot) = self.tick_armed.get_mut(vm.index()) {
            *slot = None;
        }
    }

    /// Removes and returns the earliest deliverable event, if any.
    ///
    /// Stale `VmTick`s — superseded by an earlier re-arm or cancelled —
    /// are dropped silently; the kernel never sees them.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        loop {
            let ev = self.pop_raw()?;
            if let Event::VmTick { vm } = ev.event {
                let armed = self.tick_armed.get(vm.index()).copied().flatten();
                if armed != Some(ev.time) {
                    self.coalesced += 1;
                    continue;
                }
                self.tick_armed[vm.index()] = None;
            }
            self.popped += 1;
            return Some(ev);
        }
    }

    fn pop_raw(&mut self) -> Option<ScheduledEvent> {
        loop {
            if let Some((time, bucket)) = &mut self.current {
                if !bucket.exhausted() {
                    let slot = &mut bucket.events[bucket.cursor];
                    let dummy = ScheduledEvent {
                        time: *time,
                        seq: slot.seq,
                        dest: slot.dest,
                        src: slot.src,
                        event: Event::Start,
                    };
                    let ev = std::mem::replace(slot, dummy);
                    bucket.cursor += 1;
                    self.pending -= 1;
                    return Some(ev);
                }
                if let Some((_, mut bucket)) = self.current.take() {
                    bucket.events.clear();
                    if self.spare.len() < 4 {
                        self.spare.push(bucket.events);
                    }
                }
            }
            let (t, events) = self.future.pop_first()?;
            self.current = Some((t, Bucket { events, cursor: 0 }));
        }
    }

    /// Time of the earliest *deliverable* event.
    ///
    /// Unlike [`EventQueue::peek_time`], the returned time is exactly what
    /// a subsequent [`EventQueue::pop`] would deliver: stale coalesced
    /// `VmTick`s at the head are dropped in place rather than reported.
    /// (A stale head cannot simply be peeked around — pop would skip it
    /// and return a later event, so a plain peek could understate the next
    /// delivery time.) The epoch drivers ([`crate::sharded`]) use this to
    /// bound a replay round by the next real queue event.
    pub(crate) fn peek_deliverable_time(&mut self) -> Option<SimTime> {
        loop {
            if let Some((time, bucket)) = &mut self.current {
                if !bucket.exhausted() {
                    let slot = &bucket.events[bucket.cursor];
                    if let Event::VmTick { vm } = slot.event {
                        let armed = self.tick_armed.get(vm.index()).copied().flatten();
                        if armed != Some(slot.time) {
                            bucket.cursor += 1;
                            self.pending -= 1;
                            self.coalesced += 1;
                            continue;
                        }
                    }
                    return Some(*time);
                }
                if let Some((_, mut bucket)) = self.current.take() {
                    bucket.events.clear();
                    if self.spare.len() < 4 {
                        self.spare.push(bucket.events);
                    }
                }
            }
            let (t, events) = self.future.pop_first()?;
            self.current = Some((t, Bucket { events, cursor: 0 }));
        }
    }

    /// Time of the earliest pending event (including not-yet-dropped stale
    /// ticks — this is a diagnostic view of the raw queue).
    pub fn peek_time(&self) -> Option<SimTime> {
        let current = self
            .current
            .as_ref()
            .and_then(|(t, b)| (!b.exhausted()).then_some(*t));
        current.or_else(|| self.future.keys().next().copied())
    }

    /// Number of pending events (including not-yet-dropped stale ticks).
    pub fn len(&self) -> usize {
        self.pending
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Total events ever pushed (diagnostics).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events ever delivered (diagnostics).
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Stale `VmTick`s dropped by coalescing (diagnostics).
    pub fn total_coalesced(&self) -> u64 {
        self.coalesced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(q: &mut EventQueue, t: f64) {
        q.push(SimTime::new(t), EntityId(0), EntityId(1), Event::Start);
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        ev(&mut q, 5.0);
        ev(&mut q, 1.0);
        ev(&mut q, 3.0);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_millis())
            .collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10u32 {
            q.push(SimTime::new(2.0), EntityId(0), EntityId(i), Event::Start);
        }
        let dests: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.dest.0).collect();
        assert_eq!(dests, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        ev(&mut q, 1.0);
        ev(&mut q, 2.0);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::new(1.0)));
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert_eq!(q.total_popped(), 0);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        ev(&mut q, 10.0);
        ev(&mut q, 4.0);
        assert_eq!(q.pop().unwrap().time, SimTime::new(4.0));
        ev(&mut q, 7.0);
        ev(&mut q, 2.0);
        assert_eq!(q.pop().unwrap().time, SimTime::new(2.0));
        assert_eq!(q.pop().unwrap().time, SimTime::new(7.0));
        assert_eq!(q.pop().unwrap().time, SimTime::new(10.0));
    }

    #[test]
    fn same_time_push_while_draining_fires_in_order() {
        // Zero-delay sends issued while handling a time-t event must fire
        // at t, after everything already queued there.
        let mut q = EventQueue::new();
        q.push(SimTime::new(5.0), EntityId(0), EntityId(1), Event::Start);
        q.push(SimTime::new(5.0), EntityId(0), EntityId(2), Event::Start);
        assert_eq!(q.pop().unwrap().dest, EntityId(1));
        q.push(SimTime::new(5.0), EntityId(0), EntityId(3), Event::Start);
        assert_eq!(q.pop().unwrap().dest, EntityId(2));
        assert_eq!(q.pop().unwrap().dest, EntityId(3));
        assert!(q.pop().is_none());
    }

    fn tick(q: &mut EventQueue, now: f64, vm: u32, at: f64) {
        q.push_vm_tick(
            SimTime::new(now),
            EntityId(0),
            EntityId(0),
            VmId(vm),
            SimTime::new(at),
        );
    }

    #[test]
    fn superseded_tick_is_dropped_and_earliest_fires() {
        let mut q = EventQueue::new();
        tick(&mut q, 0.0, 0, 10.0);
        // Re-arm earlier: the 10.0 tick is superseded by lazy deletion.
        tick(&mut q, 0.0, 0, 5.0);
        let first = q.pop().expect("armed tick fires");
        assert_eq!(first.time, SimTime::new(5.0));
        assert!(matches!(first.event, Event::VmTick { vm: VmId(0) }));
        assert!(q.pop().is_none(), "stale 10.0 tick never delivered");
        assert_eq!(q.total_coalesced(), 1);
    }

    #[test]
    fn later_rearm_is_not_scheduled() {
        let mut q = EventQueue::new();
        tick(&mut q, 0.0, 0, 5.0);
        // A later (or equal) deadline must not supersede an earlier armed
        // one, and must not enqueue a duplicate at all.
        tick(&mut q, 0.0, 0, 8.0);
        tick(&mut q, 0.0, 0, 5.0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().time, SimTime::new(5.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn rearm_after_delivery_fires_again() {
        let mut q = EventQueue::new();
        tick(&mut q, 0.0, 3, 5.0);
        assert_eq!(q.pop().unwrap().time, SimTime::new(5.0));
        tick(&mut q, 5.0, 3, 9.0);
        let ev = q.pop().expect("re-armed tick fires");
        assert_eq!(ev.time, SimTime::new(9.0));
        assert!(matches!(ev.event, Event::VmTick { vm: VmId(3) }));
    }

    #[test]
    fn cancelled_tick_is_dropped() {
        let mut q = EventQueue::new();
        tick(&mut q, 0.0, 1, 7.0);
        q.cancel_vm_tick(VmId(1));
        assert!(q.pop().is_none());
        assert_eq!(q.total_coalesced(), 1);
    }

    #[test]
    fn deliverable_peek_skips_stale_ticks() {
        let mut q = EventQueue::new();
        tick(&mut q, 0.0, 0, 3.0);
        tick(&mut q, 0.0, 0, 1.0); // supersedes the 3.0 tick
        ev(&mut q, 2.0);
        // Head order in the raw queue: tick@1 (live), ev@2, tick@3 (stale).
        assert_eq!(q.peek_deliverable_time(), Some(SimTime::new(1.0)));
        assert_eq!(q.pop().unwrap().time, SimTime::new(1.0));
        // The stale 3.0 tick must not be reported; the event at 2.0 is next.
        assert_eq!(q.peek_deliverable_time(), Some(SimTime::new(2.0)));
        assert_eq!(q.pop().unwrap().time, SimTime::new(2.0));
        assert_eq!(q.peek_deliverable_time(), None);
        assert!(q.pop().is_none());
        assert_eq!(q.total_coalesced(), 1);
    }

    #[test]
    fn ticks_for_different_vms_are_independent() {
        let mut q = EventQueue::new();
        tick(&mut q, 0.0, 0, 6.0);
        tick(&mut q, 0.0, 1, 4.0);
        tick(&mut q, 0.0, 0, 2.0); // supersedes vm0's 6.0
        let order: Vec<(f64, u32)> = std::iter::from_fn(|| q.pop())
            .map(|e| {
                let Event::VmTick { vm } = e.event else {
                    panic!("only ticks queued");
                };
                (e.time.as_millis(), vm.0)
            })
            .collect();
        assert_eq!(order, vec![(2.0, 0), (4.0, 1)]);
    }
}
