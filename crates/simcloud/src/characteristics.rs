//! Datacenter characteristics, including the cost model.
//!
//! Mirrors CloudSim's `DatacenterCharacteristics`: the per-unit prices a
//! datacenter charges for memory, storage, bandwidth and CPU time. The
//! paper's Table VII gives the heterogeneous-scenario ranges.

/// Per-unit resource prices of a datacenter.
///
/// Units follow CloudSim conventions: cost per MB of RAM, per MB of
/// storage, per Mbps of bandwidth, and per second of CPU time
/// (`CostPerProcessing` in Table VII).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// `CostPerMemory` — $/MB of VM RAM per unit task length.
    pub per_memory: f64,
    /// `CostPerStorage` — $/MB of VM image storage per unit task length.
    pub per_storage: f64,
    /// `CostPerBandwidth` — $/Mbps of VM bandwidth per unit task length.
    pub per_bandwidth: f64,
    /// `CostPerProcessing` — $/second of CPU time.
    pub per_processing: f64,
}

impl CostModel {
    /// Creates a cost model, validating non-negativity.
    pub fn new(per_memory: f64, per_storage: f64, per_bandwidth: f64, per_processing: f64) -> Self {
        let m = CostModel {
            per_memory,
            per_storage,
            per_bandwidth,
            per_processing,
        };
        m.validate().expect("invalid CostModel");
        m
    }

    /// Checks all prices are finite and non-negative.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("per_memory", self.per_memory),
            ("per_storage", self.per_storage),
            ("per_bandwidth", self.per_bandwidth),
            ("per_processing", self.per_processing),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("CostModel.{name} must be non-negative, got {v}"));
            }
        }
        Ok(())
    }

    /// A free datacenter (homogeneous scenario — cost is not measured).
    pub fn free() -> Self {
        CostModel::new(0.0, 0.0, 0.0, 0.0)
    }

    /// Midpoint of the paper's Table VII ranges.
    pub fn table_vii_midpoint() -> Self {
        CostModel::new(0.03, 0.0025, 0.03, 3.0)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::table_vii_midpoint()
    }
}

/// Static characteristics of a datacenter.
#[derive(Debug, Clone, PartialEq)]
pub struct DatacenterCharacteristics {
    /// Architecture label (informational, e.g. "x86").
    pub arch: &'static str,
    /// Operating system label (informational).
    pub os: &'static str,
    /// Virtual machine monitor label (informational).
    pub vmm: &'static str,
    /// Scheduling time zone offset (informational, CloudSim parity).
    pub time_zone: f64,
    /// Resource prices.
    pub cost: CostModel,
}

impl DatacenterCharacteristics {
    /// CloudSim's stock characteristics with the given cost model.
    pub fn with_cost(cost: CostModel) -> Self {
        DatacenterCharacteristics {
            arch: "x86",
            os: "Linux",
            vmm: "Xen",
            time_zone: 10.0,
            cost,
        }
    }
}

impl Default for DatacenterCharacteristics {
    fn default() -> Self {
        Self::with_cost(CostModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_negative_prices() {
        assert!(CostModel {
            per_memory: -0.1,
            ..CostModel::free()
        }
        .validate()
        .is_err());
        assert!(CostModel {
            per_processing: f64::INFINITY,
            ..CostModel::free()
        }
        .validate()
        .is_err());
        assert!(CostModel::free().validate().is_ok());
    }

    #[test]
    fn table_vii_midpoint_within_ranges() {
        let c = CostModel::table_vii_midpoint();
        assert!((0.01..=0.05).contains(&c.per_memory));
        assert!((0.001..=0.004).contains(&c.per_storage));
        assert!((0.01..=0.05).contains(&c.per_bandwidth));
        assert_eq!(c.per_processing, 3.0);
    }

    #[test]
    fn characteristics_defaults() {
        let ch = DatacenterCharacteristics::default();
        assert_eq!(ch.arch, "x86");
        assert_eq!(ch.cost, CostModel::table_vii_midpoint());
        let free = DatacenterCharacteristics::with_cost(CostModel::free());
        assert_eq!(free.cost.per_processing, 0.0);
    }
}
