//! Deterministic RNG helpers.
//!
//! Every stochastic component in the workspace draws from a seeded
//! [`rand::rngs::StdRng`] derived here, so a scenario seed fully determines
//! a run. Sub-streams are derived by mixing a component label into the
//! seed, which keeps components statistically independent without
//! coordinating draw counts.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives an independent RNG stream from a base seed and a component
/// label (e.g. `"aco"`, `"workload"`).
pub fn stream(seed: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(mix(seed, label))
}

/// Mixes a label into a seed (FNV-1a over the label, folded into the seed
/// with an avalanche step).
pub fn mix(seed: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // splitmix64 avalanche of seed ^ label-hash.
    let mut z = seed ^ h;
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = stream(42, "aco");
        let mut b = stream(42, "aco");
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_labels_differ() {
        let mut a = stream(42, "aco");
        let mut b = stream(42, "hbo");
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(mix(1, "x"), mix(2, "x"));
        assert_ne!(mix(1, "x"), mix(1, "y"));
    }

    #[test]
    fn mix_is_pure() {
        assert_eq!(mix(7, "workload"), mix(7, "workload"));
    }
}
