//! # biosched — bio-inspired cloud scheduling, end to end
//!
//! A Rust reproduction of *"Performance Analysis of Bio-Inspired
//! Scheduling Algorithms for Cloud Environments"* (Al Buhussain,
//! De Grande, Boukerche; IPDPS Workshops 2016), packaged as a facade over
//! four crates:
//!
//! * [`simcloud`] — a discrete-event cloud simulator (the CloudSim
//!   substitute): datacenters, hosts, VMs, cloudlets, brokers, cost model.
//! * [`core`](biosched_core) — the schedulers: Ant Colony Optimization,
//!   Honey Bee Optimization, Random Biased Sampling, the cyclic Base
//!   Test, Min-Min/Max-Min baselines, and an adaptive hybrid.
//! * [`workload`](biosched_workload) — the paper's homogeneous and
//!   heterogeneous scenario generators plus stress workloads.
//! * [`metrics`](biosched_metrics) — statistics, figure series, reports.
//!
//! ## Quickstart
//!
//! ```
//! use biosched::prelude::*;
//!
//! // The paper's heterogeneous setup, scaled down: 20 VMs, 100 cloudlets.
//! let scenario = HeterogeneousScenario {
//!     vm_count: 20,
//!     cloudlet_count: 100,
//!     datacenter_count: 4,
//!     seed: 42,
//! }
//! .build();
//!
//! // Schedule with ACO and measure with the simulator.
//! let problem = scenario.problem();
//! let mut scheduler = AlgorithmKind::AntColony.build(42);
//! let assignment = scheduler.schedule(&problem);
//! let outcome = scenario.simulate(assignment).expect("feasible scenario");
//!
//! assert_eq!(outcome.finished_count(), 100);
//! println!("makespan: {:.1} ms", outcome.simulation_time_ms().unwrap());
//! println!("imbalance: {:.2}", outcome.time_imbalance().unwrap());
//! println!("cost: {:.1}", outcome.total_cost());
//! ```
//!
//! ## Beyond the paper's batch model
//!
//! The simulator also supports workflow DAGs, staggered arrivals, host
//! failures with optional resubmission, SLA deadlines and energy
//! accounting:
//!
//! ```
//! use biosched::core::workflow::heft;
//! use biosched::prelude::*;
//! use biosched::workload::workflow;
//!
//! // A fork-join workflow on a small heterogeneous fleet.
//! let mut scenario = HeterogeneousScenario {
//!     vm_count: 8, cloudlet_count: 1, datacenter_count: 2, seed: 7,
//! }
//! .build();
//! let wf = workflow::fork_join(4, 2, 2_000.0);
//! wf.install(&mut scenario);
//!
//! let problem = scenario.problem();
//! let plan = heft(&problem, &wf.parents);
//! let outcome = scenario.simulate(plan).expect("feasible");
//! assert_eq!(outcome.finished_count(), wf.len());
//!
//! // Precedence held: no child started before its parents finished.
//! for (c, parents) in wf.parents.iter().enumerate() {
//!     for p in parents {
//!         assert!(outcome.records[c].start >= outcome.records[p.index()].finish);
//!     }
//! }
//! ```
//!
//! To regenerate the paper's tables and figures, run the harness binary:
//! `cargo run --release -p biosched-bench --bin repro -- all`, or use the
//! `biosched` CLI (`cargo run --release -p biosched-cli -- help`) for
//! ad-hoc experiments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use biosched_core as core;
pub use biosched_metrics as metrics;
pub use biosched_workload as workload;
pub use simcloud;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use biosched_core::prelude::*;
    pub use biosched_metrics::prelude::*;
    pub use biosched_workload::prelude::*;
    pub use simcloud::prelude::*;
}
