//! Property-based tests over random DAG workloads: generator validity,
//! HEFT correctness, and simulator precedence enforcement.

use biosched::core::workflow::{heft, upward_ranks};
use biosched::prelude::*;
use biosched::workload::workflow::{self, Workflow};
use proptest::prelude::*;

/// Random workflow from the generator zoo.
fn workflow_strategy() -> impl Strategy<Value = Workflow> {
    prop_oneof![
        (1usize..20, 100.0f64..5_000.0).prop_map(|(n, len)| workflow::chain(n, len)),
        (1usize..6, 1usize..4, 100.0f64..5_000.0)
            .prop_map(|(w, d, len)| workflow::fork_join(w, d, len)),
        (1usize..5, 1usize..6, 0.0f64..1.0, any::<u64>())
            .prop_map(|(l, w, p, s)| { workflow::layered_random(l, w, p, (100.0, 5_000.0), s) }),
        (1usize..6, 1usize..5, 100.0f64..5_000.0, any::<u64>())
            .prop_map(|(j, st, len, s)| workflow::pipeline_ensemble(j, st, len, s)),
    ]
}

fn scenario_for(wf: &Workflow, vms: usize, seed: u64) -> Scenario {
    let mut scenario = HeterogeneousScenario {
        vm_count: vms,
        cloudlet_count: 1,
        datacenter_count: 2,
        seed,
    }
    .build();
    wf.install(&mut scenario);
    scenario
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated workflow is a valid DAG: parents precede children
    /// in some topological order (upward_ranks would panic on a cycle).
    #[test]
    fn generators_produce_acyclic_graphs(wf in workflow_strategy(), vms in 1usize..8) {
        let scenario = scenario_for(&wf, vms, 1);
        let problem = scenario.problem();
        let ranks = upward_ranks(&problem, &wf.parents);
        prop_assert_eq!(ranks.len(), wf.len());
        // A parent's rank strictly exceeds each child's (positive task
        // weights guarantee it).
        for (c, ps) in wf.parents.iter().enumerate() {
            for p in ps {
                prop_assert!(
                    ranks[p.index()] > ranks[c],
                    "parent {} rank {} <= child {} rank {}",
                    p, ranks[p.index()], c, ranks[c]
                );
            }
        }
    }

    /// HEFT plans are valid and the simulator completes them with
    /// precedence intact.
    #[test]
    fn heft_plans_simulate_with_precedence(wf in workflow_strategy(), seed in 0u64..50) {
        let scenario = scenario_for(&wf, 6, seed);
        let problem = scenario.problem();
        let plan = heft(&problem, &wf.parents);
        prop_assert!(plan.validate(&problem).is_ok());
        let outcome = scenario.simulate(plan).expect("feasible");
        prop_assert_eq!(outcome.finished_count(), wf.len());
        for (c, ps) in wf.parents.iter().enumerate() {
            let start = outcome.records[c].start.unwrap();
            for p in ps {
                let pf = outcome.records[p.index()].finish.unwrap();
                prop_assert!(start >= pf, "child {} started before parent {}", c, p);
            }
        }
    }

    /// The critical path bounds the simulated span from below for any
    /// plan the Base Test produces.
    #[test]
    fn critical_path_bounds_any_plan(wf in workflow_strategy(), seed in 0u64..50) {
        let scenario = scenario_for(&wf, 5, seed);
        let problem = scenario.problem();
        let fastest = problem.vms.iter().map(|v| v.mips).fold(0.0, f64::max);
        let bound_ms = wf.critical_path_mi() / fastest * 1_000.0;
        let outcome = scenario
            .simulate(RoundRobin::new().schedule(&problem))
            .expect("feasible");
        let span = outcome
            .records
            .iter()
            .filter_map(|r| Some(r.finish?.as_millis()))
            .fold(0.0, f64::max)
            - outcome
                .records
                .iter()
                .filter_map(|r| Some(r.start?.as_millis()))
                .fold(f64::INFINITY, f64::min);
        prop_assert!(
            span + 1e-6 >= bound_ms,
            "span {} beat the critical-path bound {}",
            span, bound_ms
        );
    }
}
