//! Property-based tests over randomly generated scheduling problems.
//!
//! Strategy: generate arbitrary (but feasible) fleets, workloads and
//! price books, then assert the invariants every scheduler and the
//! simulator must uphold regardless of input.

use biosched::prelude::*;
use proptest::prelude::*;
use simcloud::cloudlet_sched::SchedulerKind;

/// A random feasible scenario: 1–24 VMs, 1–60 cloudlets, 1–4 datacenters.
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        1usize..=24,
        1usize..=60,
        1usize..=4,
        0u64..1_000,
        prop::bool::ANY,
    )
        .prop_map(|(vms, cloudlets, dcs, seed, time_shared)| {
            let mut s = HeterogeneousScenario {
                vm_count: vms,
                cloudlet_count: cloudlets,
                datacenter_count: dcs,
                seed,
            }
            .build();
            s.vm_scheduler = if time_shared {
                SchedulerKind::TimeShared
            } else {
                SchedulerKind::SpaceShared
            };
            s
        })
}

/// Fast scheduler set (ACO in its cheap configuration to keep debug-mode
/// proptest runs tractable).
fn schedulers(seed: u64) -> Vec<(&'static str, Box<dyn Scheduler>)> {
    vec![
        ("base", Box::new(RoundRobin::new())),
        ("aco", Box::new(AntColony::new(AcoParams::fast(), seed))),
        ("hbo", Box::new(HoneyBee::new(HboParams::paper(), seed))),
        (
            "rbs",
            Box::new(RandomBiasedSampling::new(RbsParams::paper(), seed)),
        ),
        ("minmin", Box::new(MinMin::new())),
        ("maxmin", Box::new(MaxMin::new())),
        ("hybrid", Box::new(Hybrid::new(Objective::Makespan, seed))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every scheduler covers every cloudlet with an existing VM.
    #[test]
    fn all_schedulers_produce_valid_assignments(scenario in scenario_strategy()) {
        let problem = scenario.problem();
        for (name, mut s) in schedulers(1) {
            let a = s.schedule(&problem);
            prop_assert!(a.validate(&problem).is_ok(), "{name} invalid");
            prop_assert_eq!(a.len(), problem.cloudlet_count(), "{} incomplete", name);
        }
    }

    /// Simulating any valid assignment conserves cloudlets and yields
    /// physically sane metrics.
    #[test]
    fn simulation_invariants(scenario in scenario_strategy(), seed in 0u64..100) {
        let problem = scenario.problem();
        let a = RandomBiasedSampling::new(RbsParams::paper(), seed).schedule(&problem);
        let outcome = scenario.simulate(a).expect("generated scenarios are feasible");
        prop_assert_eq!(
            outcome.finished_count() + outcome.cloudlets_failed,
            problem.cloudlet_count()
        );
        prop_assert_eq!(outcome.cloudlets_failed, 0, "generators size hosts for all VMs");
        let makespan = outcome.simulation_time_ms().expect("all finished");
        prop_assert!(makespan > 0.0);
        for r in &outcome.records {
            let exec = r.execution_ms.expect("finished");
            prop_assert!(exec > 0.0);
            prop_assert!(exec <= makespan + 1e-6);
            prop_assert!(r.cost >= 0.0);
            prop_assert!(r.start.unwrap() <= r.finish.unwrap());
            prop_assert!(r.submit.unwrap() <= r.start.unwrap());
        }
        if let Some(im) = outcome.time_imbalance() {
            prop_assert!(im >= 0.0);
        }
    }

    /// Determinism: same seed, same problem -> identical assignment for
    /// every stochastic scheduler.
    #[test]
    fn stochastic_schedulers_are_seed_deterministic(
        scenario in scenario_strategy(),
        seed in 0u64..50,
    ) {
        let problem = scenario.problem();
        for kind in [AlgorithmKind::Rbs, AlgorithmKind::HoneyBee] {
            let a = kind.build(seed).schedule(&problem);
            let b = kind.build(seed).schedule(&problem);
            prop_assert_eq!(a, b, "{} not deterministic", kind);
        }
    }

    /// Estimated load accounting: per-VM loads sum to the total of all
    /// per-cloudlet expected times.
    #[test]
    fn load_accounting_balances(scenario in scenario_strategy()) {
        let problem = scenario.problem();
        let a = RoundRobin::new().schedule(&problem);
        let per_vm = a.estimated_load_ms(&problem);
        let total_direct: f64 = (0..problem.cloudlet_count())
            .map(|c| problem.expected_exec_ms(c, a.vm_for(c).index()))
            .sum();
        let total_per_vm: f64 = per_vm.iter().sum();
        prop_assert!((total_direct - total_per_vm).abs() < 1e-6 * total_direct.max(1.0));
        let makespan = a.estimated_makespan_ms(&problem);
        prop_assert!(per_vm.iter().all(|l| *l <= makespan + 1e-9));
    }

    /// Eq. 6 monotonicity: a faster VM never increases expected time.
    #[test]
    fn heuristic_prefers_faster_vms(
        mips_lo in 500.0f64..2_000.0,
        boost in 1.1f64..4.0,
        length in 1_000.0f64..20_000.0,
    ) {
        let vms = vec![
            VmSpec::new(mips_lo, 5_000.0, 512.0, 500.0, 1),
            VmSpec::new(mips_lo * boost, 5_000.0, 512.0, 500.0, 1),
        ];
        let p = SchedulingProblem::single_datacenter(
            vms,
            vec![CloudletSpec::new(length, 300.0, 300.0, 1)],
            CostModel::default(),
        );
        prop_assert!(p.expected_exec_ms(0, 1) < p.expected_exec_ms(0, 0));
        prop_assert!(p.heuristic(0, 1) > p.heuristic(0, 0));
    }

    /// Objective scores are non-negative and total-cost scoring is
    /// additive in the workload.
    #[test]
    fn objective_scores_sane(scenario in scenario_strategy()) {
        let problem = scenario.problem();
        let a = RoundRobin::new().schedule(&problem);
        for obj in Objective::ALL {
            let s = score_assignment(&problem, &a, obj);
            prop_assert!(s >= 0.0, "{:?} produced {}", obj, s);
            prop_assert!(s.is_finite());
        }
    }
}

/// Simulated makespan can never beat the analytic lower bound
/// total_work / total_capacity (pure-compute workloads).
#[test]
fn makespan_respects_capacity_lower_bound() {
    let mut scenario = HeterogeneousScenario {
        vm_count: 10,
        cloudlet_count: 80,
        datacenter_count: 2,
        seed: 17,
    }
    .build();
    // Strip file transfers so the bound is exact.
    for cl in &mut scenario.cloudlets {
        cl.file_size_mb = 0.0;
        cl.output_size_mb = 0.0;
    }
    let problem = scenario.problem();
    let total_mi: f64 = problem.cloudlets.iter().map(|c| c.length_mi).sum();
    let total_mips: f64 = problem.vms.iter().map(|v| v.total_mips()).sum();
    let bound_ms = total_mi / total_mips * 1_000.0;
    for kind in AlgorithmKind::PAPER_SET {
        let a = if kind == AlgorithmKind::AntColony {
            AntColony::new(AcoParams::fast(), 17).schedule(&problem)
        } else {
            kind.build(17).schedule(&problem)
        };
        let outcome = scenario.simulate(a).unwrap();
        let makespan = outcome.simulation_time_ms().unwrap();
        assert!(
            makespan >= bound_ms - 1e-6,
            "{kind}: makespan {makespan} below capacity bound {bound_ms}"
        );
    }
}
