//! End-to-end reporting: sweep results → figure series → CSV/markdown,
//! verifying the presentation layer faithfully carries the data.

use biosched::metrics::markdown::{figure_to_markdown, table_to_markdown};
use biosched::prelude::*;

fn small_sweep() -> (Vec<usize>, Vec<Vec<PointResult>>) {
    let points = vec![4usize, 8];
    let results = sweep(
        &points,
        &[AlgorithmKind::BaseTest, AlgorithmKind::Rbs],
        3,
        |vms| {
            HeterogeneousScenario {
                vm_count: vms,
                cloudlet_count: 24,
                datacenter_count: 2,
                seed: 3,
            }
            .build()
        },
    );
    (points, results)
}

#[test]
fn sweep_to_figure_to_csv_roundtrip() {
    let (points, results) = small_sweep();
    let mut fig = FigureSeries::new(
        "test",
        "VMs",
        "ms",
        points.iter().map(|p| *p as f64).collect(),
    );
    for (ai, name) in ["Base Test", "RBS"].iter().enumerate() {
        fig.push_series(
            *name,
            results
                .iter()
                .map(|row| row[ai].simulation_time_ms)
                .collect(),
        );
    }
    let csv = fig.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines[0], "VMs,Base Test,RBS");
    assert_eq!(lines.len(), 3);
    // The first data row carries the first point's actual measurement.
    let first_makespan = results[0][0].simulation_time_ms;
    assert!(
        lines[1].contains(&format!("{first_makespan}")),
        "CSV row {} must carry {first_makespan}",
        lines[1]
    );
    // Markdown rendering carries the same series names.
    let md = figure_to_markdown(&fig);
    assert!(md.contains("| VMs | Base Test | RBS |"));
}

#[test]
fn metrics_table_to_markdown() {
    let (_, results) = small_sweep();
    let mut table = Table::new(vec!["algorithm", "makespan"]);
    for r in &results[0] {
        table.push_row(vec![
            r.algorithm.label().to_string(),
            fmt_value(r.simulation_time_ms),
        ]);
    }
    let md = table_to_markdown(&table);
    assert!(md.contains("| algorithm | makespan |"));
    assert!(md.contains("| Base Test | "));
    assert!(md.contains("| RBS | "));
}

#[test]
fn histograms_and_percentiles_over_real_outcomes() {
    use biosched::metrics::distribution::{gini, percentile, Histogram};
    let scenario = HeterogeneousScenario {
        vm_count: 10,
        cloudlet_count: 100,
        datacenter_count: 2,
        seed: 5,
    }
    .build();
    let outcome = scenario
        .simulate(
            AlgorithmKind::BaseTest
                .build(5)
                .schedule(&scenario.problem()),
        )
        .unwrap();
    let execs: Vec<f64> = outcome
        .records
        .iter()
        .filter_map(|r| r.execution_ms)
        .collect();
    let p50 = percentile(&execs, 0.5).unwrap();
    let p99 = percentile(&execs, 0.99).unwrap();
    assert!(p99 >= p50);
    let hist = Histogram::of(&execs, 8).unwrap();
    assert_eq!(hist.count(), 100);
    // Load inequality across VMs is a proper fraction.
    let busy = outcome.per_vm_busy_ms(10);
    let g = gini(&busy).unwrap();
    assert!((0.0..1.0).contains(&g), "gini {g}");
}
