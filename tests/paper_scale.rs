//! Paper-scale smoke tests — `#[ignore]`d by default because they take
//! minutes even in release mode. Run with:
//!
//! ```sh
//! cargo test --release --test paper_scale -- --ignored
//! ```

use biosched::prelude::*;

/// The paper's largest homogeneous point: 100 000 VMs and 10⁶ cloudlets
/// through the Base Test and the full discrete-event simulator.
#[test]
#[ignore = "paper-scale: ~10^6 cloudlets, minutes in release mode"]
fn full_scale_homogeneous_base_test() {
    let scenario = HomogeneousScenario {
        vm_count: 100_000,
        cloudlet_count: 1_000_000,
    }
    .build();
    let problem = scenario.problem();
    let assignment = RoundRobin::new().schedule(&problem);
    let outcome = scenario.simulate(assignment).expect("feasible");
    assert_eq!(outcome.finished_count(), 1_000_000);
    // 10 cloudlets of 250ms per VM, time-shared: 2500ms makespan.
    let makespan = outcome.simulation_time_ms().unwrap();
    assert!(
        (makespan - 2_500.0).abs() < 1.0,
        "expected ~2500ms, got {makespan}"
    );
}

/// ACO at the paper's heterogeneous full scale (950 VMs, 5000 cloudlets).
#[test]
#[ignore = "paper-scale: ACO over 5000 cloudlets, ~a minute in release mode"]
fn full_scale_heterogeneous_aco() {
    let scenario = HeterogeneousScenario {
        vm_count: 950,
        cloudlet_count: 5_000,
        datacenter_count: 4,
        seed: 42,
    }
    .build();
    let problem = scenario.problem();
    let aco = AlgorithmKind::AntColony.build(42).schedule(&problem);
    let base = RoundRobin::new().schedule(&problem);
    let aco_outcome = scenario.simulate(aco).expect("feasible");
    let base_outcome = scenario.simulate(base).expect("feasible");
    assert_eq!(aco_outcome.finished_count(), 5_000);
    assert!(
        aco_outcome.simulation_time_ms().unwrap() < base_outcome.simulation_time_ms().unwrap(),
        "Fig. 6a's headline must hold at full scale"
    );
}
