//! End-to-end workflow tests: DAG generators → HEFT → discrete-event
//! simulation, cross-validating the analytic model against the simulator.

use biosched::core::workflow::{heft, heft_estimate_ms};
use biosched::prelude::*;
use biosched::workload::workflow;

fn scenario_with(wf: &workflow::Workflow, seed: u64) -> Scenario {
    let mut scenario = HeterogeneousScenario {
        vm_count: 10,
        cloudlet_count: 1,
        datacenter_count: 2,
        seed,
    }
    .build();
    wf.install(&mut scenario);
    scenario
}

fn simulated_span(outcome: &SimulationOutcome) -> f64 {
    outcome
        .records
        .iter()
        .filter_map(|r| Some(r.finish?.as_millis()))
        .fold(0.0, f64::max)
}

/// On pure-compute chains, HEFT's predicted makespan and the simulator's
/// measured one must agree to floating-point precision: both model FIFO
/// VMs, zero staging, and sequential dependencies.
#[test]
fn heft_estimate_matches_simulation_on_chains() {
    let wf = workflow::chain(16, 3_000.0);
    let scenario = scenario_with(&wf, 5);
    let problem = scenario.problem();
    let parents = scenario.dependencies.clone().unwrap();
    let estimate = heft_estimate_ms(&problem, &parents);
    let outcome = scenario.simulate(heft(&problem, &parents)).unwrap();
    let measured = simulated_span(&outcome);
    assert!(
        (estimate - measured).abs() < 1e-6 * estimate,
        "estimate {estimate} vs simulated {measured}"
    );
}

/// HEFT beats blind cyclic binding on every generated DAG shape.
#[test]
fn heft_beats_base_test_on_dags() {
    let workflows = [
        workflow::chain(20, 4_000.0),
        workflow::fork_join(6, 3, 4_000.0),
        workflow::layered_random(5, 6, 0.3, (1_000.0, 8_000.0), 11),
        workflow::pipeline_ensemble(8, 4, 4_000.0, 11),
    ];
    for (i, wf) in workflows.iter().enumerate() {
        let scenario = scenario_with(wf, 13);
        let problem = scenario.problem();
        let parents = scenario.dependencies.clone().unwrap();
        let heft_span = simulated_span(&scenario.simulate(heft(&problem, &parents)).unwrap());
        let rr_span = simulated_span(
            &scenario
                .simulate(RoundRobin::new().schedule(&problem))
                .unwrap(),
        );
        assert!(
            heft_span <= rr_span,
            "workflow {i}: HEFT {heft_span} lost to RR {rr_span}"
        );
    }
}

/// The simulator enforces precedence regardless of how bad the plan is:
/// children never start before their parents finish.
#[test]
fn precedence_is_enforced_for_any_plan() {
    let wf = workflow::layered_random(4, 5, 0.4, (500.0, 5_000.0), 3);
    let scenario = scenario_with(&wf, 3);
    let problem = scenario.problem();
    let parents = scenario.dependencies.clone().unwrap();
    for plan in [
        RoundRobin::new().schedule(&problem),
        RandomBiasedSampling::new(RbsParams::paper(), 3).schedule(&problem),
    ] {
        let outcome = scenario.simulate(plan).unwrap();
        assert_eq!(outcome.finished_count(), wf.len());
        for (c, ps) in parents.iter().enumerate() {
            let start = outcome.records[c].start.unwrap().as_millis();
            for p in ps {
                let parent_finish = outcome.records[p.index()].finish.unwrap().as_millis();
                assert!(
                    start + 1e-9 >= parent_finish,
                    "task {c} started at {start} before parent {p} finished at {parent_finish}"
                );
            }
        }
    }
}

/// The simulated span of any valid plan is bounded below by the
/// workflow's critical path executed on the fastest VM.
#[test]
fn critical_path_lower_bound_holds() {
    let wf = workflow::fork_join(5, 4, 6_000.0);
    let scenario = scenario_with(&wf, 17);
    let problem = scenario.problem();
    let parents = scenario.dependencies.clone().unwrap();
    let fastest_mips = problem.vms.iter().map(|v| v.mips).fold(0.0, f64::max);
    let bound_ms = wf.critical_path_mi() / fastest_mips * 1_000.0;
    let outcome = scenario.simulate(heft(&problem, &parents)).unwrap();
    let span = simulated_span(&outcome);
    assert!(
        span + 1e-6 >= bound_ms,
        "span {span} beat the critical-path bound {bound_ms}"
    );
}
