//! Integration tests pinning the paper's qualitative claims.
//!
//! These are the "shape" assertions of the reproduction: who wins on
//! which metric, per Section VI-D. Sizes are kept moderate so the suite
//! runs in debug mode; the `repro` binary exercises full figure scales.

use biosched::prelude::*;

fn hetero(vms: usize, cloudlets: usize, seed: u64) -> Scenario {
    HeterogeneousScenario {
        vm_count: vms,
        cloudlet_count: cloudlets,
        datacenter_count: 4,
        seed,
    }
    .build()
}

/// Schedules with a cheap ACO configuration (same structure as the paper
/// config, fewer ants) so debug-mode tests stay fast.
fn fast_aco(problem: &SchedulingProblem, seed: u64) -> Assignment {
    AntColony::new(AcoParams::fast(), seed).schedule(problem)
}

#[test]
fn heterogeneous_aco_wins_makespan() {
    // Section VI-D-2 / Fig. 6a: "ACO presents the best performance as the
    // Cloudlets finished the fastest."
    let scenario = hetero(60, 150, 42);
    let problem = scenario.problem();
    let aco = scenario.simulate(fast_aco(&problem, 42)).unwrap();
    let base = scenario
        .simulate(RoundRobin::new().schedule(&problem))
        .unwrap();
    let hbo = scenario
        .simulate(HoneyBee::new(HboParams::paper(), 42).schedule(&problem))
        .unwrap();
    let rbs = scenario
        .simulate(RandomBiasedSampling::new(RbsParams::paper(), 42).schedule(&problem))
        .unwrap();
    let m = |o: &SimulationOutcome| o.simulation_time_ms().unwrap();
    assert!(
        m(&aco) < m(&base),
        "ACO {} must beat Base {}",
        m(&aco),
        m(&base)
    );
    assert!(
        m(&aco) < m(&hbo),
        "ACO {} must beat HBO {}",
        m(&aco),
        m(&hbo)
    );
    assert!(
        m(&aco) < m(&rbs),
        "ACO {} must beat RBS {}",
        m(&aco),
        m(&rbs)
    );
}

#[test]
fn heterogeneous_hbo_wins_cost() {
    // Section VI-D-2 / Fig. 6d: "HBO presents the best price value."
    let scenario = hetero(100, 200, 7);
    let problem = scenario.problem();
    let hbo = scenario
        .simulate(HoneyBee::new(HboParams::paper(), 7).schedule(&problem))
        .unwrap();
    let base = scenario
        .simulate(RoundRobin::new().schedule(&problem))
        .unwrap();
    let rbs = scenario
        .simulate(RandomBiasedSampling::new(RbsParams::paper(), 7).schedule(&problem))
        .unwrap();
    assert!(hbo.total_cost() < base.total_cost());
    assert!(hbo.total_cost() < rbs.total_cost());
}

#[test]
fn homogeneous_all_converge_to_base_test() {
    // Section VI-D-1 / Fig. 4: "even in the worst case scenario, the
    // algorithms behave closely to the Base test."
    let scenario = HomogeneousScenario {
        vm_count: 20,
        cloudlet_count: 400,
    }
    .build();
    let problem = scenario.problem();
    let base = scenario
        .simulate(RoundRobin::new().schedule(&problem))
        .unwrap();
    let base_makespan = base.simulation_time_ms().unwrap();
    for (name, assignment) in [
        ("aco", fast_aco(&problem, 1)),
        (
            "hbo",
            HoneyBee::new(HboParams::paper(), 1).schedule(&problem),
        ),
        (
            "rbs",
            RandomBiasedSampling::new(RbsParams::paper(), 1).schedule(&problem),
        ),
    ] {
        let outcome = scenario.simulate(assignment).unwrap();
        let makespan = outcome.simulation_time_ms().unwrap();
        assert!(
            makespan <= base_makespan * 1.6,
            "{name} makespan {makespan} strays too far from base {base_makespan}"
        );
        assert_eq!(outcome.finished_count(), 400, "{name} must finish all");
    }
}

#[test]
fn base_test_is_fastest_decision() {
    // Fig. 5 / Fig. 6b: the Base Test needs no computation; the
    // bio-inspired schedulers pay for their decisions. Wall-clock
    // comparisons are noisy, so only the widest gap (Base vs ACO) is
    // asserted, with generous slack.
    let scenario = hetero(80, 200, 3);
    let problem = scenario.problem();

    let t0 = std::time::Instant::now();
    let _ = RoundRobin::new().schedule(&problem);
    let base_time = t0.elapsed();

    let t1 = std::time::Instant::now();
    let _ = fast_aco(&problem, 3);
    let aco_time = t1.elapsed();

    assert!(
        aco_time > base_time * 5,
        "ACO ({aco_time:?}) must take much longer to decide than Base ({base_time:?})"
    );
}

#[test]
fn hbo_prefers_cheapest_datacenter() {
    // Section III: bees exploit the most profitable source; Fig. 6d's
    // mechanism is the cheap-DC concentration capped by facLB.
    let scenario = hetero(80, 400, 9);
    let problem = scenario.problem();
    let assignment = HoneyBee::new(HboParams::paper(), 9).schedule(&problem);

    // Identify the cheapest datacenter by the HBO fitness rate.
    let cheapest = (0..problem.datacenters.len())
        .min_by(|a, b| {
            let ra = biosched::core::hbo::best_rate_in_dc(
                &problem.datacenters[*a].cost,
                problem.vms.iter(),
            );
            let rb = biosched::core::hbo::best_rate_in_dc(
                &problem.datacenters[*b].cost,
                problem.vms.iter(),
            );
            ra.total_cmp(&rb)
        })
        .unwrap();
    let share = assignment
        .as_slice()
        .iter()
        .filter(|vm| problem.vm_placement[vm.index()].index() == cheapest)
        .count() as f64
        / assignment.len() as f64;
    assert!(
        share > 0.5,
        "cheapest DC should receive the majority of cloudlets, got {share}"
    );
    assert!(
        share < 0.85,
        "facLB must stop total concentration, got {share}"
    );
}

#[test]
fn rbs_balances_but_fluctuates() {
    // Section VI-D: RBS is "used as a load balancer in networking" but its
    // WIL randomness produces fluctuation. The NID mechanism keeps
    // *counts* nearly even (one advertisement round = one cloudlet per
    // VM); the fluctuation lives in which task lands on which VM, i.e. in
    // the per-VM load spread.
    let scenario = hetero(50, 487, 13);
    let problem = scenario.problem();
    let assignment = RandomBiasedSampling::new(RbsParams::paper(), 13).schedule(&problem);
    let counts = assignment.counts_per_vm(50);
    assert!(counts.iter().all(|c| *c > 0), "no VM starves under RBS");
    let min = *counts.iter().min().unwrap();
    let max = *counts.iter().max().unwrap();
    assert!(
        max - min <= 2,
        "counts stay near-even (min={min}, max={max})"
    );
    // Load (estimated busy time) fluctuates because random WIL pairs long
    // tasks with arbitrary VMs.
    let load = assignment.estimated_load_ms(&problem);
    let lmin = load.iter().copied().fold(f64::INFINITY, f64::min);
    let lmax = load.iter().copied().fold(0.0, f64::max);
    assert!(
        lmax > 1.2 * lmin,
        "random pairing must spread load (min={lmin}, max={lmax})"
    );
}

#[test]
fn hybrid_tracks_each_specialist() {
    // Section VII's proposed design, validated against the specialists.
    let scenario = hetero(60, 150, 21);
    let problem = scenario.problem();

    let hybrid_cost = scenario
        .simulate(Hybrid::new(Objective::Cost, 21).schedule(&problem))
        .unwrap();
    let base = scenario
        .simulate(RoundRobin::new().schedule(&problem))
        .unwrap();
    assert!(hybrid_cost.total_cost() <= base.total_cost());

    let hybrid_makespan = scenario
        .simulate(Hybrid::new(Objective::Makespan, 21).schedule(&problem))
        .unwrap();
    assert!(hybrid_makespan.simulation_time_ms().unwrap() <= base.simulation_time_ms().unwrap());
}
