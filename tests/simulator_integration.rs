//! Cross-crate integration tests of the simulation substrate: analytic
//! validation of the DES against closed-form expectations, determinism,
//! and failure handling through the full Scenario → simulate pipeline.

use biosched::prelude::*;
use simcloud::cloudlet_sched::SchedulerKind;
use simcloud::datacenter::DatacenterBlueprint;

/// One VM at 1000 MIPS, pure-compute cloudlets: simulated times must match
/// hand-computed values exactly.
#[test]
fn space_shared_serial_execution_is_exact() {
    let vm = VmSpec::new(1_000.0, 100.0, 128.0, 500.0, 1);
    let cloudlets: Vec<CloudletSpec> = [500.0, 1_000.0, 250.0]
        .iter()
        .map(|mi| CloudletSpec::new(*mi, 0.0, 0.0, 1))
        .collect();
    let outcome = SimulationBuilder::new()
        .datacenter(DatacenterBlueprint::sized_for(
            &vm,
            1,
            1,
            DatacenterCharacteristics::default(),
        ))
        .vms(vec![vm])
        .cloudlets(cloudlets)
        .assignment(vec![VmId(0); 3])
        .run()
        .unwrap();
    // Serial FIFO: 500ms + 1000ms + 250ms.
    assert!((outcome.simulation_time_ms().unwrap() - 1_750.0).abs() < 1e-6);
    let execs: Vec<f64> = outcome
        .records
        .iter()
        .map(|r| r.execution_ms.unwrap())
        .collect();
    assert!((execs[0] - 500.0).abs() < 1e-6);
    assert!((execs[1] - 1_000.0).abs() < 1e-6);
    assert!((execs[2] - 250.0).abs() < 1e-6);
}

/// Two equal cloudlets time-sharing one PE finish together at 2× the
/// solo time.
#[test]
fn time_shared_contention_is_exact() {
    let vm = VmSpec::new(1_000.0, 100.0, 128.0, 500.0, 1);
    let scenario_cl = CloudletSpec::new(1_000.0, 0.0, 0.0, 1);
    let mut blueprint =
        DatacenterBlueprint::sized_for(&vm, 1, 1, DatacenterCharacteristics::default());
    blueprint.scheduler = SchedulerKind::TimeShared;
    let outcome = SimulationBuilder::new()
        .datacenter(blueprint)
        .vms(vec![vm])
        .cloudlets(vec![scenario_cl; 2])
        .assignment(vec![VmId(0); 2])
        .run()
        .unwrap();
    for r in &outcome.records {
        assert!(
            (r.execution_ms.unwrap() - 2_000.0).abs() < 1e-6,
            "each contended cloudlet runs at half speed: {:?}",
            r.execution_ms
        );
    }
}

/// Input staging delays execution start by fileSize×8/bw seconds.
#[test]
fn input_transfer_delays_start() {
    let vm = VmSpec::new(1_000.0, 5_000.0, 512.0, 500.0, 1);
    let cl = CloudletSpec::new(250.0, 300.0, 0.0, 1); // 4.8s staging
    let outcome = SimulationBuilder::new()
        .datacenter(DatacenterBlueprint::sized_for(
            &vm,
            1,
            1,
            DatacenterCharacteristics::default(),
        ))
        .vms(vec![vm])
        .cloudlets(vec![cl])
        .assignment(vec![VmId(0)])
        .run()
        .unwrap();
    let r = &outcome.records[0];
    let start = r.start.unwrap().as_millis();
    assert!((start - 4_800.0).abs() < 1e-6, "staging delay, got {start}");
    assert!((r.finish.unwrap().as_millis() - 5_050.0).abs() < 1e-6);
}

/// The same scenario + assignment always produces an identical outcome.
#[test]
fn simulation_is_deterministic() {
    let scenario = HeterogeneousScenario {
        vm_count: 20,
        cloudlet_count: 100,
        datacenter_count: 3,
        seed: 5,
    }
    .build();
    let assignment = AlgorithmKind::Rbs.build(5).schedule(&scenario.problem());
    let a = scenario.simulate(assignment.clone()).unwrap();
    let b = scenario.simulate(assignment).unwrap();
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.total_cost(), b.total_cost());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.finish, rb.finish);
        assert_eq!(ra.cost, rb.cost);
    }
}

/// Conservation: every cloudlet either finishes or fails, never vanishes.
#[test]
fn cloudlet_conservation_under_rejections() {
    // Tiny datacenter that can host only 2 of 5 requested VMs.
    let vm = VmSpec::homogeneous_default();
    let outcome = SimulationBuilder::new()
        .datacenter(DatacenterBlueprint::sized_for(
            &vm,
            2,
            1,
            DatacenterCharacteristics::default(),
        ))
        .vms(vec![vm; 5])
        .cloudlets(vec![CloudletSpec::homogeneous_default(); 20])
        .assignment((0..20).map(|i| VmId::from_index(i % 5)).collect())
        .run()
        .unwrap();
    assert_eq!(outcome.vms_created, 2);
    assert_eq!(outcome.vms_rejected, 3);
    assert_eq!(outcome.finished_count() + outcome.cloudlets_failed, 20);
    // Exactly the cloudlets bound to the two surviving VMs finish.
    assert_eq!(outcome.finished_count(), 8);
}

/// Makespan equals the simulated clock's busy window and bounds every
/// per-cloudlet execution.
#[test]
fn makespan_bounds_execution_times() {
    let scenario = HeterogeneousScenario {
        vm_count: 15,
        cloudlet_count: 120,
        datacenter_count: 2,
        seed: 8,
    }
    .build();
    let assignment = AlgorithmKind::HoneyBee
        .build(8)
        .schedule(&scenario.problem());
    let outcome = scenario.simulate(assignment).unwrap();
    let makespan = outcome.simulation_time_ms().unwrap();
    for r in outcome.records.iter() {
        let exec = r.execution_ms.unwrap();
        assert!(
            exec <= makespan + 1e-6,
            "execution {exec} cannot exceed makespan {makespan}"
        );
    }
    assert!(outcome.end_time.as_millis() >= makespan);
}

/// Multi-datacenter topologies with per-DC latency shift submission times.
#[test]
fn topology_latency_shifts_submissions() {
    let vm = VmSpec::new(1_000.0, 100.0, 128.0, 500.0, 1);
    let cl = CloudletSpec::new(1_000.0, 0.0, 0.0, 1);
    let run = |latency: f64| {
        SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                1,
                1,
                DatacenterCharacteristics::default(),
            ))
            .vms(vec![vm.clone()])
            .cloudlets(vec![cl.clone()])
            .assignment(vec![VmId(0)])
            .topology(Topology::with_latencies(vec![latency]))
            .run()
            .unwrap()
    };
    let near = run(0.0);
    let far = run(250.0);
    let start_near = near.records[0].start.unwrap().as_millis();
    let start_far = far.records[0].start.unwrap().as_millis();
    // VM creation and cloudlet submission each cross the link once.
    assert!(
        (start_far - start_near - 500.0).abs() < 1e-6,
        "two one-way latencies expected, got {}",
        start_far - start_near
    );
}

/// Deadlines flow end to end: a queued cloudlet misses a tight SLA while
/// the first one meets it.
#[test]
fn sla_accounting_end_to_end() {
    let vm = VmSpec::new(1_000.0, 100.0, 128.0, 500.0, 1);
    // Solo runtime 1s. Deadline 1.5s: the first (runs 0-1s) meets it; the
    // second (queued, finishes at 2s) misses.
    let cl = CloudletSpec::new(1_000.0, 0.0, 0.0, 1).with_deadline(1_500.0);
    let outcome = SimulationBuilder::new()
        .datacenter(DatacenterBlueprint::sized_for(
            &vm,
            1,
            1,
            DatacenterCharacteristics::default(),
        ))
        .vms(vec![vm])
        .cloudlets(vec![cl; 2])
        .assignment(vec![VmId(0); 2])
        .run()
        .unwrap();
    assert_eq!(outcome.records[0].met_deadline, Some(true));
    assert_eq!(outcome.records[1].met_deadline, Some(false));
    assert_eq!(outcome.sla_violations(), 1);
    assert!((outcome.sla_attainment().unwrap() - 0.5).abs() < 1e-12);
}

/// SLA attainment is monotone in deadline slack: looser SLAs are easier
/// to meet, for every scheduler.
#[test]
fn sla_attainment_monotone_in_slack() {
    use biosched::workload::traces::attach_deadlines;
    for kind in [AlgorithmKind::BaseTest, AlgorithmKind::MaxMin] {
        let mut previous = -1.0f64;
        for slack in [2.0, 8.0, 64.0] {
            let mut scenario = HeterogeneousScenario {
                vm_count: 20,
                cloudlet_count: 120,
                datacenter_count: 2,
                seed: 23,
            }
            .build();
            attach_deadlines(&mut scenario.cloudlets, 2_000.0, slack);
            let problem = scenario.problem();
            let outcome = scenario
                .simulate(kind.build(23).schedule(&problem))
                .unwrap();
            let attainment = outcome.sla_attainment().unwrap();
            assert!(
                attainment >= previous,
                "{kind}: slack {slack} attainment {attainment} fell below {previous}"
            );
            previous = attainment;
        }
        assert!(
            previous > 0.9,
            "{kind}: with 64x slack nearly everything should meet its SLA, got {previous}"
        );
    }
}

/// Arrivals and dependencies compose: a child released by its parent
/// still waits for its own arrival time, and vice versa.
#[test]
fn arrivals_and_dependencies_compose() {
    use simcloud::ids::CloudletId;
    use simcloud::time::SimTime;
    let vm = VmSpec::new(1_000.0, 100.0, 128.0, 500.0, 1);
    let cl = CloudletSpec::new(1_000.0, 0.0, 0.0, 1); // 1s each
    let run = |child_arrival: f64| {
        SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(
                &vm,
                2,
                1,
                DatacenterCharacteristics::default(),
            ))
            .vms(vec![vm.clone(); 2])
            .cloudlets(vec![cl.clone(); 2])
            .assignment(vec![VmId(0), VmId(1)])
            .dependencies(vec![vec![], vec![CloudletId(0)]])
            .arrivals(vec![SimTime::ZERO, SimTime::new(child_arrival)])
            .run()
            .unwrap()
    };
    // Parent finishes at 1000ms. Child arriving early starts right then…
    let early = run(100.0);
    assert!((early.records[1].start.unwrap().as_millis() - 1_000.0).abs() < 1e-6);
    // …while a late-arriving child waits for its own arrival.
    let late = run(5_000.0);
    assert!((late.records[1].start.unwrap().as_millis() - 5_000.0).abs() < 1e-6);
}

/// Per-VM busy time from the outcome matches the assignment's work split
/// in a space-shared run.
#[test]
fn per_vm_busy_matches_work_split() {
    let vm = VmSpec::new(1_000.0, 100.0, 128.0, 500.0, 1);
    let outcome = SimulationBuilder::new()
        .datacenter(DatacenterBlueprint::sized_for(
            &vm,
            2,
            1,
            DatacenterCharacteristics::default(),
        ))
        .vms(vec![vm; 2])
        .cloudlets(vec![
            CloudletSpec::new(1_000.0, 0.0, 0.0, 1),
            CloudletSpec::new(2_000.0, 0.0, 0.0, 1),
            CloudletSpec::new(500.0, 0.0, 0.0, 1),
        ])
        .assignment(vec![VmId(0), VmId(1), VmId(0)])
        .run()
        .unwrap();
    let busy = outcome.per_vm_busy_ms(2);
    assert!((busy[0] - 1_500.0).abs() < 1e-6);
    assert!((busy[1] - 2_000.0).abs() < 1e-6);
}

/// Costs accumulate per the datacenter's cost model and scale with prices.
#[test]
fn cost_scales_with_datacenter_prices() {
    let build = |per_processing: f64| {
        let vm = VmSpec::homogeneous_default();
        let chars =
            DatacenterCharacteristics::with_cost(CostModel::new(0.0, 0.0, 0.0, per_processing));
        SimulationBuilder::new()
            .datacenter(DatacenterBlueprint::sized_for(&vm, 2, 1, chars))
            .vms(vec![vm; 2])
            .cloudlets(vec![CloudletSpec::new(1_000.0, 0.0, 0.0, 1); 4])
            .assignment((0..4).map(|i| VmId::from_index(i % 2)).collect())
            .run()
            .unwrap()
    };
    let cheap = build(1.0);
    let dear = build(3.0);
    assert!(cheap.total_cost() > 0.0);
    assert!(
        (dear.total_cost() - 3.0 * cheap.total_cost()).abs() < 1e-9,
        "pure CPU-priced cost must scale linearly"
    );
}
