//! Offline vendored stand-in for the `rand` crate.
//!
//! This workspace builds in containers with no reachable cargo registry, so
//! the small slice of the rand 0.8 API the codebase uses is reimplemented
//! here and wired in via a path dependency (see the root `Cargo.toml`).
//!
//! Provided surface:
//! - [`RngCore`] / [`SeedableRng`] with the `seed_from_u64` constructor the
//!   deterministic seed-stream derivation in `simcloud::rng` relies on.
//! - [`rngs::StdRng`]: a xoshiro256++ generator (Blackman & Vigna) seeded
//!   through SplitMix64, matching rand's `seed_from_u64` construction. The
//!   *stream values* differ from upstream `StdRng` (ChaCha12) — the repo only
//!   requires determinism per seed and good statistical quality, both of
//!   which xoshiro256++ provides.
//! - [`Rng`]: `gen`, `gen_range` over half-open and inclusive integer/float
//!   ranges, and `gen_bool`.
//! - [`seq::SliceRandom`]: `shuffle` and `choose`.

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanding it with SplitMix64 —
    /// the same expansion upstream rand uses, so small seed inputs still
    /// produce well-mixed internal state.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 (Steele, Lea & Flood) — used for seed expansion.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro's all-zero state is a fixed point; re-expand instead.
            if s == [0; 4] {
                let mut sm = SplitMix64 { state: 0x1F0E_9A2D_5C4B_3786 };
                for word in &mut s {
                    *word = sm.next();
                }
            }
            StdRng { s }
        }
    }
}

/// Types producible by [`Rng::gen`] from a uniform bit stream.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        next_f64(rng)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform f64 in `[0, 1)` with 53 bits of precision.
#[inline]
fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The largest f64 strictly below `x` (for `x > 0` or any finite `x` with a
/// representable predecessor above the range start).
#[inline]
fn next_down(x: f64) -> f64 {
    if x > 0.0 {
        f64::from_bits(x.to_bits() - 1)
    } else if x < 0.0 {
        f64::from_bits(x.to_bits() + 1)
    } else {
        -f64::MIN_POSITIVE
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded integer sampling (Lemire); the modulo bias is
/// below 2^-64 for every span the workspace uses.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

int_range_impls!(u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "cannot sample empty range {:?}",
            self
        );
        let v = self.start + next_f64(rng) * (self.end - self.start);
        // Rounding at the top of a wide range can land exactly on `end`;
        // the contract is half-open, so step one ulp back inside.
        if v < self.end {
            v
        } else {
            next_down(self.end).max(self.start)
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + next_f64(rng) * (end - start)
    }
}

/// Convenience methods layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of a [`Standard`]-producible type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        next_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Random-order operations on slices.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        let zs: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let a: usize = rng.gen_range(0..17);
            assert!(a < 17);
            let b: u32 = rng.gen_range(1..=9);
            assert!((1..=9).contains(&b));
            let c: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&c));
            let d: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&d));
            let e: f64 = rng.gen_range(500.0..=4_000.0);
            assert!((500.0..=4_000.0).contains(&e));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn uniformity_over_buckets() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
