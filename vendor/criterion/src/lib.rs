//! Offline vendored stand-in for the `criterion` crate.
//!
//! This workspace builds in containers with no reachable cargo registry, so
//! the slice of the criterion 0.5 API the bench targets use is reimplemented
//! here and wired in via a path dependency (see the root `Cargo.toml`).
//!
//! It is a real (if spartan) measurement harness, not a no-op: each
//! benchmark is warmed up, then timed over `sample_size` samples whose
//! per-sample iteration count is calibrated so a sample takes a measurable
//! slice of wall time. Mean / min / max per-iteration times (and element
//! throughput when declared) are printed to stdout in a stable
//! `name ... time: [..]` format. There are no HTML reports, statistics
//! beyond the summary line, or outlier analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `function_id` plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: std::fmt::Display, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs the payload.
pub struct Bencher {
    sample_size: usize,
    /// (total elapsed, iterations) per sample, filled by `iter`.
    samples: Vec<(Duration, u64)>,
}

impl Bencher {
    /// Calibrates an iteration count, then records `sample_size` timed
    /// samples of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find how many iterations fill ~5ms.
        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push((start.elapsed(), iters_per_sample));
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (minimum 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its summary line.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id.id), &bencher.samples, self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

fn report(name: &str, samples: &[(Duration, u64)], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    let per_iter: Vec<f64> = samples
        .iter()
        .map(|(d, n)| d.as_secs_f64() / *n as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:.3} Melem/s", n as f64 / mean / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {:.3} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "{name:<60} time: [{} {} {}]{extra}",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Criterion 0.5 compatibility: configuration hook (ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            _criterion: self,
        }
    }

    /// Single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: 20,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(name, &bencher.samples, None);
        self
    }

    /// Benchmark-binary entry point: runs every registered group. Criterion
    /// binaries are invoked by cargo with harness flags (`--bench`); they
    /// are accepted and ignored.
    pub fn final_summary(&mut self) {}
}

/// Defines a function running a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` for a benchmark binary (`harness = false` targets).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags such as `--bench`; accept
            // and ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_function(BenchmarkId::from_parameter(64), |b| {
            b.iter(|| (0..64u64).map(black_box).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    criterion_group!(benches, payload);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("algo", 5).id, "algo/5");
        assert_eq!(BenchmarkId::from_parameter("aco").id, "aco");
    }
}
