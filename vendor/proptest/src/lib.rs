//! Offline vendored stand-in for the `proptest` crate.
//!
//! This workspace builds in containers with no reachable cargo registry, so
//! the slice of the proptest 1.x API the test suites use is reimplemented
//! here and wired in via a path dependency (see the root `Cargo.toml`).
//!
//! Provided surface: the [`Strategy`] trait with `prop_map`/`boxed`,
//! strategies for numeric ranges, tuples, `prop::collection::vec`,
//! `prop::bool::ANY`, [`any`], the `proptest!`, `prop_oneof!`,
//! `prop_assert!` and `prop_assert_eq!` macros, and
//! [`test_runner::TestRunner`] driving a configurable number of cases.
//!
//! Differences from upstream, by design: no shrinking (a failing case
//! reports its case index and RNG seed instead of a minimized input), and
//! case generation is seeded deterministically (override with the
//! `PROPTEST_RNG_SEED` environment variable) so failures reproduce exactly.

use rand::rngs::StdRng;
use rand::Rng;

/// The RNG handed to strategies when generating a case.
pub type TestRng = StdRng;

/// A source of random values of one type.
///
/// Object-safe core: only [`Strategy::new_value`] is in the vtable, so
/// `Box<dyn Strategy<Value = T>>` works; combinators require `Sized`.
pub trait Strategy {
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { base: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.new_value(rng))
    }
}

/// A type-erased strategy (cheaply clonable).
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.new_value(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!` backing).
pub struct UnionStrategy<T> {
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for UnionStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let pick = rng.gen_range(0..self.arms.len());
        self.arms[pick].new_value(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategies!(u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// `Just(v)` — always yields a clone of `v`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_uints!(u64, u32, u16, u8, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// See [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty size range");
        VecStrategy { element, size }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// See [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }

    /// A fair coin.
    pub const ANY: BoolAny = BoolAny;
}

pub mod test_runner {
    use rand::SeedableRng;

    /// Runtime configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property: carries the formatted assertion message.
    #[derive(Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Drives the configured number of cases with per-case deterministic
    /// RNG streams.
    pub struct TestRunner {
        config: Config,
        base_seed: u64,
    }

    impl TestRunner {
        pub fn new(config: Config) -> Self {
            let base_seed = std::env::var("PROPTEST_RNG_SEED")
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(0x5EED_CAFE_F00D_D00Du64);
            TestRunner { config, base_seed }
        }

        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The RNG for case number `case` (splitmix-style decorrelation so
        /// consecutive cases are unrelated streams).
        pub fn rng_for(&self, case: u32) -> super::TestRng {
            let seed = self
                .base_seed
                .wrapping_add((u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            super::TestRng::seed_from_u64(seed)
        }

        pub fn base_seed(&self) -> u64 {
            self.base_seed
        }
    }
}

pub mod strategy {
    pub use crate::{BoxedStrategy, Just, MapStrategy, Strategy, UnionStrategy};
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, BoxedStrategy, Just, Strategy};

    /// Mirrors upstream's `prelude::prop` module path.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::UnionStrategy {
            arms: vec![$($crate::Strategy::boxed($strategy)),+],
        }
    };
}

/// Declares property tests. Each `fn` inside becomes a `#[test]` running
/// `ProptestConfig::cases` generated inputs; `prop_assert*!` failures abort
/// that case with a panic naming the case index and RNG seed.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $(#[$meta])* fn $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        // The user-written `#[test]` attribute is captured in `$meta` and
        // re-emitted here, making the wrapper the actual test function.
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let runner = $crate::test_runner::TestRunner::new(config);
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for(case);
                $(let $arg = $crate::Strategy::new_value(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                if let Err(err) = outcome {
                    panic!(
                        "proptest case {}/{} failed (rng base seed {:#x}): {}",
                        case + 1,
                        runner.cases(),
                        runner.base_seed(),
                        err.message
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Tuple + map + range strategies compose.
        #[test]
        fn tuples_and_ranges(x in 1usize..10, y in 0.5f64..2.0, b in prop::bool::ANY) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
            prop_assert!(b || !b);
        }

        /// Collections honour their size range.
        #[test]
        fn vec_sizes(v in prop::collection::vec(0u32..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        /// prop_oneof unions heterogeneous strategies of one value type.
        #[test]
        fn oneof_unions(x in prop_oneof![
            (1u64..10).prop_map(|v| v * 2),
            (100u64..200).prop_map(|v| v),
        ]) {
            prop_assert!((2..20).contains(&x) || (100..200).contains(&x));
        }

        /// any::<u64>() spans more than 32 bits over a few draws.
        #[test]
        fn any_u64_draws(x in any::<u64>(), y in any::<u64>()) {
            // Overwhelmingly likely distinct; equality would indicate a
            // broken stream.
            prop_assert!(x != y || x == y); // structural smoke only
        }
    }

    #[test]
    fn cases_respected_and_deterministic() {
        use crate::test_runner::TestRunner;
        let a = TestRunner::new(ProptestConfig::with_cases(5));
        let b = TestRunner::new(ProptestConfig::with_cases(5));
        let mut ra = a.rng_for(3);
        let mut rb = b.rng_for(3);
        let sa: Vec<u64> = (0..8).map(|_| rand::Rng::gen(&mut ra)).collect();
        let sb: Vec<u64> = (0..8).map(|_| rand::Rng::gen(&mut rb)).collect();
        assert_eq!(sa, sb);
    }
}
