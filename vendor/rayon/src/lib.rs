//! Offline vendored stand-in for the `rayon` crate.
//!
//! This workspace builds in containers with no reachable cargo registry, so
//! the slice of the rayon API the codebase uses is reimplemented here over
//! `std::thread::scope` and wired in via a path dependency (see the root
//! `Cargo.toml`).
//!
//! Provided surface:
//! - `prelude::*` with [`iter::ParallelIterator`] supporting `map` +
//!   `collect`/`sum`, `par_iter()` on slices and `Vec`s, and
//!   `into_par_iter()` on `Vec<T>` and integer ranges.
//! - [`ThreadPoolBuilder`] with `num_threads(n).build_global()`.
//! - [`current_num_threads`].
//!
//! Semantics preserved from upstream: input order is preserved in the
//! output, closures run on OS threads (not a fake sequential loop), and the
//! worker count honours `build_global` first, then `RAYON_NUM_THREADS`,
//! then the machine's available parallelism. Unlike upstream there is no
//! persistent pool or work stealing: each parallel stage spawns scoped
//! threads over contiguous chunks, which is the right trade-off for the
//! coarse-grained population/sweep workloads in this repository.

use std::sync::atomic::{AtomicUsize, Ordering};

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads a parallel stage will use.
pub fn current_num_threads() -> usize {
    let forced = GLOBAL_THREADS.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(env) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = env.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error type returned by [`ThreadPoolBuilder::build_global`].
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool configuration error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the global degree of parallelism.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means "derive from the environment".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the configuration globally. Unlike upstream rayon this can
    /// be called repeatedly; the latest call wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

pub mod iter {
    use super::current_num_threads;

    /// Order-preserving parallel map over an owned `Vec`.
    fn parallel_map<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let threads = current_num_threads().min(items.len().max(1));
        if threads <= 1 || items.len() < 2 {
            return items.into_iter().map(f).collect();
        }
        let len = items.len();
        let chunk = len.div_ceil(threads);
        let mut source = items.into_iter();
        let mut chunks: Vec<Vec<T>> = Vec::new();
        while source.len() > 0 {
            chunks.push(source.by_ref().take(chunk).collect());
        }
        let mut out: Vec<U> = Vec::with_capacity(len);
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|part| {
                    scope.spawn(move || part.into_iter().map(f).collect::<Vec<U>>())
                })
                .collect();
            for handle in handles {
                out.extend(handle.join().expect("parallel worker panicked"));
            }
        });
        out
    }

    /// A materialized parallel iterator: items are collected up front and
    /// the (possibly mapped) pipeline is executed across scoped threads at
    /// the terminal operation.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    /// Lazily mapped parallel iterator.
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    pub trait ParallelIterator: Sized {
        type Item: Send;

        /// Executes the pipeline, preserving input order.
        fn drive(self) -> Vec<Self::Item>;

        fn map<U, F>(self, f: F) -> Map<Self, F>
        where
            U: Send,
            F: Fn(Self::Item) -> U + Sync,
        {
            Map { base: self, f }
        }

        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            self.drive().into_iter().collect()
        }

        fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
            self.drive().into_iter().sum()
        }
    }

    impl<T: Send> ParallelIterator for ParIter<T> {
        type Item = T;

        fn drive(self) -> Vec<T> {
            self.items
        }
    }

    impl<I, U, F> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        U: Send,
        F: Fn(I::Item) -> U + Sync,
    {
        type Item = U;

        fn drive(self) -> Vec<U> {
            parallel_map(self.base.drive(), &self.f)
        }
    }

    /// Conversion into a parallel iterator by value.
    pub trait IntoParallelIterator {
        type Item: Send;
        type Iter: ParallelIterator<Item = Self::Item>;

        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = ParIter<T>;

        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    macro_rules! range_into_par_iter {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for core::ops::Range<$t> {
                type Item = $t;
                type Iter = ParIter<$t>;

                fn into_par_iter(self) -> ParIter<$t> {
                    ParIter { items: self.collect() }
                }
            }
        )*};
    }

    range_into_par_iter!(u32, u64, usize, i32, i64);

    /// Conversion into a parallel iterator over references.
    pub trait IntoParallelRefIterator<'a> {
        type Item: Send + 'a;
        type Iter: ParallelIterator<Item = Self::Item>;

        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = ParIter<&'a T>;

        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = ParIter<&'a T>;

        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1_000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(xs, (0..1_000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter() {
        let data: Vec<usize> = (0..97).collect();
        let out: Vec<usize> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, (1..98).collect::<Vec<_>>());
    }

    #[test]
    fn threads_override() {
        crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .unwrap();
        assert_eq!(crate::current_num_threads(), 3);
        crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn sum_works() {
        let s: u64 = (0..100u64).into_par_iter().map(|x| x).sum();
        assert_eq!(s, 4950);
    }
}
